"""Tests for head-wise and replica-level migration planning."""

import pytest

from repro.kvcache.migration import ReplicaMigrationPlanner, plan_head_migration
from repro.models.spec import get_model_spec
from repro.utils.rng import make_rng


@pytest.fixture
def llama70b():
    return get_model_spec("llama-70b")


@pytest.fixture
def llama13b():
    return get_model_spec("llama-13b")


def test_identical_allocations_no_movement(llama13b):
    alloc = {0: 20, 1: 20}
    plan = plan_head_migration(llama13b, seq_id=1, context_tokens=500, old_allocation=alloc, new_allocation=alloc)
    assert plan.is_empty
    assert plan.total_bytes == 0.0


def test_partial_overlap_moves_only_delta(llama13b):
    old = {0: 30, 1: 10}
    new = {0: 20, 1: 20}
    plan = plan_head_migration(llama13b, 1, 1000, old, new)
    assert plan.moved_heads == 10
    assert len(plan.steps) == 1
    step = plan.steps[0]
    assert step.src_device == 0 and step.dst_device == 1
    expected_bytes = 10 * 1000 * llama13b.kv_bytes_per_token() / llama13b.num_heads
    assert step.n_bytes == pytest.approx(expected_bytes)


def test_full_move_to_new_device(llama13b):
    old = {0: 40}
    new = {2: 40}
    plan = plan_head_migration(llama13b, 5, 200, old, new)
    assert plan.moved_heads == 40
    assert plan.steps[0].dst_device == 2


def test_multiple_donors_and_receivers(llama13b):
    old = {0: 20, 1: 20, 2: 0}
    new = {0: 10, 1: 10, 2: 20}
    plan = plan_head_migration(llama13b, 9, 100, old, new)
    assert plan.moved_heads == 20
    assert {s.src_device for s in plan.steps} == {0, 1}
    assert all(s.dst_device == 2 for s in plan.steps)


def test_integrity_violation_rejected(llama13b):
    with pytest.raises(ValueError, match="integrity"):
        plan_head_migration(llama13b, 1, 100, {0: 40}, {0: 30})


def test_group_size_violation_rejected(llama70b):
    # r = 8 for llama-70b: allocations must be multiples of 8.
    with pytest.raises(ValueError, match="not a multiple"):
        plan_head_migration(llama70b, 1, 100, {0: 60, 1: 4}, {0: 56, 1: 8})


def test_gqa_plan_valid_groups(llama70b):
    old = {0: 64}
    new = {0: 32, 1: 32}
    plan = plan_head_migration(llama70b, 1, 800, old, new)
    assert plan.moved_heads == 32
    assert plan.total_bytes == pytest.approx(32 * 800 * llama70b.kv_bytes_per_token() / 64)


def test_negative_allocation_rejected(llama13b):
    with pytest.raises(ValueError):
        plan_head_migration(llama13b, 1, 100, {0: -10, 1: 50}, {0: 20, 1: 20})


def test_deterministic_pairing(llama13b):
    old = {3: 10, 1: 10, 2: 20}
    new = {3: 0, 1: 0, 2: 40}
    plan_a = plan_head_migration(llama13b, 1, 100, old, new)
    plan_b = plan_head_migration(llama13b, 1, 100, old, new)
    assert [(s.src_device, s.dst_device, s.num_query_heads) for s in plan_a.steps] == [
        (s.src_device, s.dst_device, s.num_query_heads) for s in plan_b.steps
    ]


def test_plan_is_identical_regardless_of_allocation_dict_order(llama13b):
    """Regression: device enumeration is sorted, not set-ordered.

    plan_head_migration used to walk ``set(old) | set(new)``, so the surplus/
    deficit bookkeeping dicts were populated in hash-seed-dependent order.
    The emitted plan must be byte-identical however the input mappings are
    ordered (DET002).
    """
    old = {3: 10, 0: 30, 7: 0}
    new = {7: 20, 3: 0, 0: 20}
    reference = plan_head_migration(llama13b, 1, 1000, old, new)
    for old_items, new_items in [
        (sorted(old.items()), sorted(new.items())),
        (sorted(old.items(), reverse=True), sorted(new.items(), reverse=True)),
    ]:
        plan = plan_head_migration(llama13b, 1, 1000, dict(old_items), dict(new_items))
        assert plan.steps == reference.steps
        assert plan.total_bytes == reference.total_bytes


# -- byte-accounting properties (seeded random allocations) ---------------------


def _random_gqa_allocation(rng, num_heads, r, num_devices):
    """A random head placement: ``num_heads`` heads over devices, multiples of r."""
    groups = num_heads // r
    alloc = {dev: 0 for dev in range(num_devices)}
    for _ in range(groups):
        alloc[int(rng.integers(0, num_devices))] += r
    return alloc


@pytest.mark.parametrize("model_name", ["llama-13b", "llama-70b"])
def test_property_moved_bytes_match_head_fraction(model_name):
    """moved bytes == (moved heads / num_heads) x the request's total KV bytes.

    Holds for any GQA ratio and any pair of valid allocations: the plan's
    byte volume is exactly the moved-head fraction of ``context x
    kv_bytes_per_token`` (paper Eq. 5's conservation argument).
    """
    model = get_model_spec(model_name)
    r = model.gqa_ratio
    rng = make_rng(1234)
    for trial in range(50):
        num_devices = int(rng.integers(1, 7))
        context = int(rng.integers(1, 4096))
        old = _random_gqa_allocation(rng, model.num_heads, r, num_devices)
        new = _random_gqa_allocation(rng, model.num_heads, r, num_devices)
        plan = plan_head_migration(model, trial, context, old, new)
        total_kv = context * model.kv_bytes_per_token()
        assert plan.total_bytes == pytest.approx(
            plan.moved_heads / model.num_heads * total_kv
        )
        # Conservation: donors lose exactly what receivers gain.
        assert plan.moved_heads == sum(
            max(0, old.get(d, 0) - new.get(d, 0)) for d in old
        )


def test_property_invariant_under_device_relabeling():
    """Relabeling device ids permutes the plan but not its volume.

    Byte totals and moved-head counts are physical quantities; they cannot
    depend on which integer names a device.
    """
    model = get_model_spec("llama-13b")
    r = model.gqa_ratio
    rng = make_rng(99)
    for trial in range(25):
        num_devices = int(rng.integers(2, 6))
        context = int(rng.integers(1, 2048))
        old = _random_gqa_allocation(rng, model.num_heads, r, num_devices)
        new = _random_gqa_allocation(rng, model.num_heads, r, num_devices)
        base = plan_head_migration(model, trial, context, old, new)
        perm = list(rng.permutation(num_devices))
        relabel = {dev: 1000 + perm[dev] for dev in range(num_devices)}
        old2 = {relabel[d]: h for d, h in old.items()}
        new2 = {relabel[d]: h for d, h in new.items()}
        relabeled = plan_head_migration(model, trial, context, old2, new2)
        assert relabeled.moved_heads == base.moved_heads
        assert relabeled.total_bytes == pytest.approx(base.total_bytes)
        assert len(relabeled.steps) >= bool(base.steps)


# -- replica-level planner ------------------------------------------------------


def test_replica_planner_prices_whole_request(llama13b):
    planner = ReplicaMigrationPlanner(llama13b, bandwidth_gbps=100.0)
    plan = planner.plan([(7, 1000, 0, 2)])
    assert plan.num_requests == 1
    step = plan.steps[0]
    assert step.request_id == 7
    assert step.src_replica == 0 and step.dst_replica == 2
    expected_bytes = 1000 * llama13b.kv_bytes_per_token()
    assert step.n_bytes == pytest.approx(expected_bytes)
    assert step.transfer_seconds == pytest.approx(expected_bytes / (100.0 * 1e9 / 8))
    assert plan.total_bytes == pytest.approx(expected_bytes)


def test_replica_planner_preserves_input_order(llama13b):
    planner = ReplicaMigrationPlanner(llama13b)
    moves = [(3, 10, 0, 1), (1, 20, 0, 2), (2, 30, 0, 1)]
    plan = planner.plan(moves)
    assert [s.request_id for s in plan.steps] == [3, 1, 2]


def test_replica_planner_without_model_is_free(llama13b):
    planner = ReplicaMigrationPlanner(None)
    plan = planner.plan([(1, 500, 0, 1)])
    assert plan.total_bytes == 0.0
    assert plan.steps[0].transfer_seconds == 0.0


def test_replica_planner_bandwidth_scales_transfer_time(llama13b):
    fast = ReplicaMigrationPlanner(llama13b, bandwidth_gbps=200.0)
    slow = ReplicaMigrationPlanner(llama13b, bandwidth_gbps=50.0)
    t_fast = fast.plan([(1, 800, 0, 1)]).steps[0].transfer_seconds
    t_slow = slow.plan([(1, 800, 0, 1)]).steps[0].transfer_seconds
    assert t_slow == pytest.approx(4 * t_fast)


def test_replica_planner_rejects_bad_bandwidth(llama13b):
    with pytest.raises(ValueError, match="bandwidth"):
        ReplicaMigrationPlanner(llama13b, bandwidth_gbps=0.0)
