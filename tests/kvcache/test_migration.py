"""Tests for head-wise migration planning."""

import pytest

from repro.kvcache.migration import plan_head_migration
from repro.models.spec import get_model_spec


@pytest.fixture
def llama70b():
    return get_model_spec("llama-70b")


@pytest.fixture
def llama13b():
    return get_model_spec("llama-13b")


def test_identical_allocations_no_movement(llama13b):
    alloc = {0: 20, 1: 20}
    plan = plan_head_migration(llama13b, seq_id=1, context_tokens=500, old_allocation=alloc, new_allocation=alloc)
    assert plan.is_empty
    assert plan.total_bytes == 0.0


def test_partial_overlap_moves_only_delta(llama13b):
    old = {0: 30, 1: 10}
    new = {0: 20, 1: 20}
    plan = plan_head_migration(llama13b, 1, 1000, old, new)
    assert plan.moved_heads == 10
    assert len(plan.steps) == 1
    step = plan.steps[0]
    assert step.src_device == 0 and step.dst_device == 1
    expected_bytes = 10 * 1000 * llama13b.kv_bytes_per_token() / llama13b.num_heads
    assert step.n_bytes == pytest.approx(expected_bytes)


def test_full_move_to_new_device(llama13b):
    old = {0: 40}
    new = {2: 40}
    plan = plan_head_migration(llama13b, 5, 200, old, new)
    assert plan.moved_heads == 40
    assert plan.steps[0].dst_device == 2


def test_multiple_donors_and_receivers(llama13b):
    old = {0: 20, 1: 20, 2: 0}
    new = {0: 10, 1: 10, 2: 20}
    plan = plan_head_migration(llama13b, 9, 100, old, new)
    assert plan.moved_heads == 20
    assert {s.src_device for s in plan.steps} == {0, 1}
    assert all(s.dst_device == 2 for s in plan.steps)


def test_integrity_violation_rejected(llama13b):
    with pytest.raises(ValueError, match="integrity"):
        plan_head_migration(llama13b, 1, 100, {0: 40}, {0: 30})


def test_group_size_violation_rejected(llama70b):
    # r = 8 for llama-70b: allocations must be multiples of 8.
    with pytest.raises(ValueError, match="not a multiple"):
        plan_head_migration(llama70b, 1, 100, {0: 60, 1: 4}, {0: 56, 1: 8})


def test_gqa_plan_valid_groups(llama70b):
    old = {0: 64}
    new = {0: 32, 1: 32}
    plan = plan_head_migration(llama70b, 1, 800, old, new)
    assert plan.moved_heads == 32
    assert plan.total_bytes == pytest.approx(32 * 800 * llama70b.kv_bytes_per_token() / 64)


def test_negative_allocation_rejected(llama13b):
    with pytest.raises(ValueError):
        plan_head_migration(llama13b, 1, 100, {0: -10, 1: 50}, {0: 20, 1: 20})


def test_deterministic_pairing(llama13b):
    old = {3: 10, 1: 10, 2: 20}
    new = {3: 0, 1: 0, 2: 40}
    plan_a = plan_head_migration(llama13b, 1, 100, old, new)
    plan_b = plan_head_migration(llama13b, 1, 100, old, new)
    assert [(s.src_device, s.dst_device, s.num_query_heads) for s in plan_a.steps] == [
        (s.src_device, s.dst_device, s.num_query_heads) for s in plan_b.steps
    ]


def test_plan_is_identical_regardless_of_allocation_dict_order(llama13b):
    """Regression: device enumeration is sorted, not set-ordered.

    plan_head_migration used to walk ``set(old) | set(new)``, so the surplus/
    deficit bookkeeping dicts were populated in hash-seed-dependent order.
    The emitted plan must be byte-identical however the input mappings are
    ordered (DET002).
    """
    old = {3: 10, 0: 30, 7: 0}
    new = {7: 20, 3: 0, 0: 20}
    reference = plan_head_migration(llama13b, 1, 1000, old, new)
    for old_items, new_items in [
        (sorted(old.items()), sorted(new.items())),
        (sorted(old.items(), reverse=True), sorted(new.items(), reverse=True)),
    ]:
        plan = plan_head_migration(llama13b, 1, 1000, dict(old_items), dict(new_items))
        assert plan.steps == reference.steps
        assert plan.total_bytes == reference.total_bytes
