"""Tests for links, the alpha-beta model, and collective cost estimates."""

import pytest

from repro.hardware.interconnect import DEFAULT_LINKS, Interconnect, Link, LinkKind


class TestLink:
    def test_transfer_time_alpha_beta(self):
        link = Link(latency=1e-3, bandwidth=1e9)
        assert link.transfer_time(1e9) == pytest.approx(1.001)

    def test_zero_bytes_is_free(self):
        link = Link(latency=5e-3, bandwidth=1e9)
        assert link.transfer_time(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            Link(latency=0, bandwidth=1e9).transfer_time(-1)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Link(latency=0, bandwidth=0)

    def test_lan_default_is_100gbit(self):
        lan = DEFAULT_LINKS[LinkKind.LAN]
        assert lan.bandwidth == pytest.approx(12.5e9)


class TestInterconnect:
    def setup_method(self):
        self.net = Interconnect()

    def test_same_host_uses_pcie(self):
        assert self.net.link_between(0, 0).kind == LinkKind.PCIE

    def test_cross_host_uses_lan(self):
        assert self.net.link_between(0, 1).kind == LinkKind.LAN

    def test_same_device_is_loopback(self):
        assert self.net.link_between(0, 0, same_device=True).kind == LinkKind.LOOPBACK

    def test_p2p_cross_host_slower_than_intra_host(self):
        n_bytes = 100e6
        assert self.net.p2p_time(n_bytes, 0, 1) > self.net.p2p_time(n_bytes, 0, 0)

    def test_allreduce_single_member_free(self):
        assert self.net.allreduce_time(1e6, (0,)) == 0.0

    def test_allreduce_grows_with_group_span(self):
        intra = self.net.allreduce_time(1e8, (0, 0, 0, 0))
        inter = self.net.allreduce_time(1e8, (0, 1, 2, 3))
        assert inter > intra

    def test_allgather_zero_bytes_free(self):
        assert self.net.allgather_time(0, (0, 1)) == 0.0

    def test_allgather_positive_for_multi_rank(self):
        assert self.net.allgather_time(1e6, (0, 1, 2)) > 0.0

    def test_scatter_gather_no_peers_free(self):
        assert self.net.scatter_gather_time(1e6, 0, ()) == 0.0

    def test_scatter_gather_remote_serialises_on_nic(self):
        one = self.net.scatter_gather_time(50e6, 0, (1,))
        four = self.net.scatter_gather_time(50e6, 0, (1, 2, 3, 4))
        assert four > one

    def test_scatter_gather_local_peers_cheaper_than_remote(self):
        local = self.net.scatter_gather_time(50e6, 0, (0,))
        remote = self.net.scatter_gather_time(50e6, 0, (1,))
        assert local < remote
