"""Tests for hosts, the cluster builder, and the paper's testbed topology."""

import pytest

from repro.hardware.cluster import Cluster, ClusterBuilder, paper_cluster, simple_cluster
from repro.hardware.gpu import GPUDevice, get_gpu_spec
from repro.hardware.node import Host


class TestHost:
    def test_add_device_sets_host_id(self):
        host = Host(host_id=3)
        dev = host.add_device(GPUDevice(device_id=0, spec=get_gpu_spec("a100")))
        assert dev.host_id == 3
        assert host.num_devices == 1

    def test_total_gpu_memory(self):
        host = Host(host_id=0)
        host.add_device(GPUDevice(device_id=0, spec=get_gpu_spec("a100")))
        host.add_device(GPUDevice(device_id=1, spec=get_gpu_spec("p100")))
        assert host.total_gpu_memory_bytes == get_gpu_spec("a100").memory_bytes + get_gpu_spec("p100").memory_bytes

    def test_invalid_cpu_cores(self):
        with pytest.raises(ValueError):
            Host(host_id=0, cpu_cores=0)


class TestPaperCluster:
    def setup_method(self):
        self.cluster = paper_cluster()

    def test_device_counts(self):
        counts = self.cluster.counts_by_type()
        assert counts == {"a100": 4, "rtx3090": 4, "p100": 4}

    def test_host_layout(self):
        assert len(self.cluster.hosts) == 4
        assert [h.num_devices for h in self.cluster.hosts] == [4, 2, 2, 4]

    def test_device_ids_unique_and_ordered(self):
        ids = [d.device_id for d in self.cluster.devices]
        assert ids == sorted(set(ids))
        assert len(ids) == 12

    def test_gpu_types_ordered_fastest_first(self):
        assert self.cluster.gpu_types == ["a100", "rtx3090", "p100"]

    def test_total_memory(self):
        assert self.cluster.total_memory_bytes == pytest.approx((4 * 80 + 4 * 24 + 4 * 12) * 1e9)

    def test_device_lookup(self):
        dev = self.cluster.device(5)
        assert dev.device_id == 5
        with pytest.raises(KeyError):
            self.cluster.device(99)

    def test_devices_of_type(self):
        assert len(self.cluster.devices_of_type("p100")) == 4
        assert all(d.spec.name == "p100" for d in self.cluster.devices_of_type("P100"))

    def test_p2p_time_intra_vs_inter_host(self):
        a100s = self.cluster.devices_of_type("a100")
        p100s = self.cluster.devices_of_type("p100")
        intra = self.cluster.p2p_time(1e8, a100s[0], a100s[1])
        inter = self.cluster.p2p_time(1e8, a100s[0], p100s[0])
        assert inter > intra

    def test_clear_weight_assignments(self):
        dev = self.cluster.devices[0]
        dev.assign_weights(10**9)
        self.cluster.clear_weight_assignments()
        assert all(d.weight_bytes == 0 for d in self.cluster.devices)


class TestClusterBuilder:
    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            ClusterBuilder().build()

    def test_unknown_gpu_rejected_eagerly(self):
        with pytest.raises(KeyError):
            ClusterBuilder().add_host("gtx480", count=2)

    def test_heterogeneous_host(self):
        cluster = ClusterBuilder().add_host(["a100", "p100"]).build()
        assert cluster.hosts[0].num_devices == 2
        assert cluster.counts_by_type() == {"a100": 1, "p100": 1}

    def test_empty_host_rejected(self):
        with pytest.raises(ValueError):
            ClusterBuilder().add_host([])

    def test_simple_cluster_shape(self):
        cluster = simple_cluster("a100", "rtx3090", n_high=1, n_low=2)
        assert cluster.counts_by_type() == {"a100": 1, "rtx3090": 2}
        assert len(cluster.hosts) == 2


def test_cluster_duplicate_device_ids_detected():
    spec = get_gpu_spec("a100")
    host = Host(host_id=0, devices=[GPUDevice(device_id=0, spec=spec), GPUDevice(device_id=0, spec=spec)])
    cluster = Cluster(hosts=[host])
    # devices property sorts by id; duplicate ids collapse in lookups, which the
    # builder prevents -- here we just document that manual construction allows it.
    assert cluster.num_devices == 2
