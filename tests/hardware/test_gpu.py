"""Tests for GPU specs, the catalog, and device memory accounting."""

import pytest

from repro.hardware.gpu import GPU_CATALOG, GPUDevice, GPUSpec, get_gpu_spec, register_gpu_spec
from repro.utils.units import gb_to_bytes, giga, tera


def test_catalog_contains_paper_gpus():
    for name in ("a100", "rtx3090", "p100"):
        assert name in GPU_CATALOG


def test_get_gpu_spec_case_insensitive():
    assert get_gpu_spec("A100") is get_gpu_spec("a100")


def test_get_gpu_spec_unknown_raises():
    with pytest.raises(KeyError, match="unknown GPU type"):
        get_gpu_spec("h100-nvl-mega")


def test_catalog_memory_matches_paper_table1():
    assert get_gpu_spec("a100").memory_gb == pytest.approx(80.0)
    assert get_gpu_spec("rtx3090").memory_gb == pytest.approx(24.0)
    assert get_gpu_spec("p100").memory_gb == pytest.approx(12.0)


def test_register_duplicate_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_gpu_spec(get_gpu_spec("a100"))


def test_spec_validation_rejects_nonpositive_memory():
    with pytest.raises(ValueError):
        GPUSpec(
            name="bogus",
            memory_bytes=0,
            matmul_flops=tera(1),
            small_batch_flops=tera(1),
            mem_bandwidth=giga(1),
        )


def test_spec_scaled_changes_rates_only():
    base = get_gpu_spec("p100")
    fast = base.scaled(compute_factor=2.0, bandwidth_factor=3.0)
    assert fast.matmul_flops == pytest.approx(base.matmul_flops * 2)
    assert fast.small_batch_flops == pytest.approx(base.small_batch_flops * 2)
    assert fast.mem_bandwidth == pytest.approx(base.mem_bandwidth * 3)
    assert fast.memory_bytes == base.memory_bytes


def test_gpu_ordering_by_compute():
    assert get_gpu_spec("a100").matmul_flops > get_gpu_spec("rtx3090").matmul_flops
    assert get_gpu_spec("rtx3090").matmul_flops > get_gpu_spec("p100").matmul_flops


class TestGPUDevice:
    def make(self, name="a100", reserved=0.10):
        return GPUDevice(device_id=0, spec=get_gpu_spec(name), reserved_fraction=reserved)

    def test_usable_bytes_applies_reserve(self):
        dev = self.make()
        assert dev.usable_bytes == int(gb_to_bytes(80) * 0.9)

    def test_kv_capacity_shrinks_with_weights(self):
        dev = self.make()
        dev.assign_weights(gb_to_bytes(20))
        assert dev.kv_capacity_bytes == dev.usable_bytes - gb_to_bytes(20)

    def test_assign_weights_too_large_raises(self):
        dev = self.make("p100")
        with pytest.raises(MemoryError):
            dev.assign_weights(gb_to_bytes(20))

    def test_add_weights_accumulates(self):
        dev = self.make()
        dev.assign_weights(gb_to_bytes(10))
        dev.add_weights(gb_to_bytes(5))
        assert dev.weight_bytes == gb_to_bytes(15)

    def test_clear_weights_restores_capacity(self):
        dev = self.make()
        dev.assign_weights(gb_to_bytes(30))
        dev.clear_weights()
        assert dev.kv_capacity_bytes == dev.usable_bytes

    def test_negative_weights_rejected(self):
        dev = self.make()
        with pytest.raises(ValueError):
            dev.assign_weights(-1)

    def test_invalid_reserved_fraction(self):
        with pytest.raises(ValueError):
            GPUDevice(device_id=0, spec=get_gpu_spec("a100"), reserved_fraction=1.5)

    def test_name_includes_type_and_id(self):
        dev = GPUDevice(device_id=7, spec=get_gpu_spec("rtx3090"))
        assert dev.name == "rtx3090:7"
