"""Tests for synthetic dataset length distributions."""

import numpy as np
import pytest

from repro.utils.rng import make_rng
from repro.workloads.datasets import DATASET_CATALOG, get_dataset_spec, sample_requests


def test_catalog_contains_paper_workloads():
    assert set(DATASET_CATALOG) == {"sharegpt", "humaneval", "longbench"}


def test_aliases_resolve():
    assert get_dataset_spec("SG") is get_dataset_spec("sharegpt")
    assert get_dataset_spec("he") is get_dataset_spec("humaneval")
    assert get_dataset_spec("LB") is get_dataset_spec("longbench")


def test_unknown_dataset():
    with pytest.raises(KeyError):
        get_dataset_spec("wikitext")


def test_sample_counts_and_bounds():
    for name, spec in DATASET_CATALOG.items():
        samples = spec.sample(make_rng(0), 500)
        assert len(samples) == 500
        for s in samples:
            assert spec.prompt_min <= s.prompt_tokens <= spec.prompt_max
            assert spec.output_min <= s.output_tokens <= spec.output_max


def test_sampling_deterministic_given_seed():
    a = sample_requests("sharegpt", 50, seed=7)
    b = sample_requests("sharegpt", 50, seed=7)
    assert [(s.prompt_tokens, s.output_tokens) for s in a] == [
        (s.prompt_tokens, s.output_tokens) for s in b
    ]


def test_longbench_prompts_much_longer_than_sharegpt():
    lb = np.mean([s.prompt_tokens for s in sample_requests("longbench", 400, seed=1)])
    sg = np.mean([s.prompt_tokens for s in sample_requests("sharegpt", 400, seed=1)])
    he = np.mean([s.prompt_tokens for s in sample_requests("humaneval", 400, seed=1)])
    assert lb > 5 * sg
    assert sg > he


def test_humaneval_outputs_shorter_than_sharegpt():
    he = np.mean([s.output_tokens for s in sample_requests("humaneval", 400, seed=2)])
    sg = np.mean([s.output_tokens for s in sample_requests("sharegpt", 400, seed=2)])
    assert he < sg


def test_longbench_output_shorter_than_prompt():
    samples = sample_requests("longbench", 200, seed=3)
    assert np.mean([s.prompt_tokens for s in samples]) > 5 * np.mean(
        [s.output_tokens for s in samples]
    )


def test_request_sample_total_and_validation():
    samples = sample_requests("sharegpt", 10, seed=0)
    assert all(s.total_tokens == s.prompt_tokens + s.output_tokens for s in samples)


def test_zero_samples():
    assert sample_requests("sharegpt", 0, seed=0) == []


def test_negative_samples_rejected():
    with pytest.raises(ValueError):
        get_dataset_spec("sharegpt").sample(make_rng(0), -1)


def test_mean_helpers_positive():
    for spec in DATASET_CATALOG.values():
        assert spec.mean_prompt_tokens > 0
        assert spec.mean_output_tokens > 0
