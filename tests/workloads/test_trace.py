"""Tests for trace generation."""

import pytest

from repro.workloads.arrivals import RatePhase
from repro.workloads.trace import Trace, TraceEntry, generate_trace


def test_generate_trace_basic():
    trace = generate_trace("sharegpt", request_rate=5.0, num_requests=40, seed=0)
    assert len(trace) == 40
    assert trace.dataset == "sharegpt"
    assert trace.request_rate == 5.0


def test_trace_sorted_by_arrival():
    trace = generate_trace("humaneval", request_rate=20.0, num_requests=100, seed=1)
    times = [e.arrival_time for e in trace]
    assert times == sorted(times)


def test_trace_deterministic():
    a = generate_trace("longbench", 2.0, 30, seed=5)
    b = generate_trace("longbench", 2.0, 30, seed=5)
    assert [(e.arrival_time, e.prompt_tokens, e.output_tokens) for e in a] == [
        (e.arrival_time, e.prompt_tokens, e.output_tokens) for e in b
    ]


def test_trace_seeds_differ():
    a = generate_trace("sharegpt", 5.0, 30, seed=1)
    b = generate_trace("sharegpt", 5.0, 30, seed=2)
    assert [e.arrival_time for e in a] != [e.arrival_time for e in b]


def test_trace_statistics():
    trace = generate_trace("sharegpt", 5.0, 64, seed=0)
    assert trace.total_prompt_tokens > 0
    assert trace.total_output_tokens > 0
    assert trace.duration == trace.entries[-1].arrival_time
    assert trace.mean_context_tokens > 0


def test_trace_with_phases_caps_requests():
    phases = [RatePhase(rate=10.0, duration=5.0)]
    trace = generate_trace("sharegpt", 0.0, num_requests=10, seed=0, phases=phases)
    assert len(trace) <= 10
    assert all(e.arrival_time < 5.0 for e in trace)


def test_trace_entry_validation():
    with pytest.raises(ValueError):
        TraceEntry(arrival_time=-1.0, prompt_tokens=10, output_tokens=10)
    with pytest.raises(ValueError):
        TraceEntry(arrival_time=0.0, prompt_tokens=0, output_tokens=10)


def test_empty_trace_properties():
    trace = Trace(entries=[])
    assert trace.duration == 0.0
    assert trace.mean_context_tokens == 0.0
    assert len(trace) == 0


# ------------------------------------------------------------------ streaming


def test_stream_phase_arrivals_bit_identical_to_list():
    from repro.workloads.arrivals import piecewise_rate_arrival_stream, piecewise_rate_arrivals

    phases = [RatePhase(rate=5.0, duration=10.0), RatePhase(rate=0.0, duration=5.0),
              RatePhase(rate=2.5, duration=10.0)]
    assert list(piecewise_rate_arrival_stream(phases, seed=7)) == piecewise_rate_arrivals(
        phases, seed=7
    )


def test_generate_trace_stream_phases_matches_list_timestamps():
    from repro.workloads.trace import generate_trace_stream

    phases = [RatePhase(rate=8.0, duration=20.0)]
    trace = generate_trace("sharegpt", 0.0, num_requests=0, seed=3, phases=phases)
    stream = generate_trace_stream("sharegpt", 0.0, num_requests=0, seed=3, phases=phases)
    assert [e.arrival_time for e in stream] == [e.arrival_time for e in trace]


def test_generate_trace_stream_is_deterministic_and_capped():
    from repro.workloads.trace import generate_trace_stream

    stream = generate_trace_stream("sharegpt", 5.0, 20, seed=0, chunk_size=7)
    a, b = list(stream), list(stream)
    assert a == b
    assert len(a) == 20
    assert all(x.arrival_time <= y.arrival_time for x, y in zip(a, a[1:]))


def test_generate_trace_stream_rejects_unbounded_poisson():
    from repro.workloads.trace import generate_trace_stream

    with pytest.raises(ValueError, match="never terminates"):
        generate_trace_stream("sharegpt", 5.0, 0, seed=0)
    with pytest.raises(ValueError, match="chunk_size"):
        generate_trace_stream("sharegpt", 5.0, 10, chunk_size=0)
