"""Tests for trace generation."""

import pytest

from repro.workloads.arrivals import RatePhase
from repro.workloads.trace import Trace, TraceEntry, generate_trace


def test_generate_trace_basic():
    trace = generate_trace("sharegpt", request_rate=5.0, num_requests=40, seed=0)
    assert len(trace) == 40
    assert trace.dataset == "sharegpt"
    assert trace.request_rate == 5.0


def test_trace_sorted_by_arrival():
    trace = generate_trace("humaneval", request_rate=20.0, num_requests=100, seed=1)
    times = [e.arrival_time for e in trace]
    assert times == sorted(times)


def test_trace_deterministic():
    a = generate_trace("longbench", 2.0, 30, seed=5)
    b = generate_trace("longbench", 2.0, 30, seed=5)
    assert [(e.arrival_time, e.prompt_tokens, e.output_tokens) for e in a] == [
        (e.arrival_time, e.prompt_tokens, e.output_tokens) for e in b
    ]


def test_trace_seeds_differ():
    a = generate_trace("sharegpt", 5.0, 30, seed=1)
    b = generate_trace("sharegpt", 5.0, 30, seed=2)
    assert [e.arrival_time for e in a] != [e.arrival_time for e in b]


def test_trace_statistics():
    trace = generate_trace("sharegpt", 5.0, 64, seed=0)
    assert trace.total_prompt_tokens > 0
    assert trace.total_output_tokens > 0
    assert trace.duration == trace.entries[-1].arrival_time
    assert trace.mean_context_tokens > 0


def test_trace_with_phases_caps_requests():
    phases = [RatePhase(rate=10.0, duration=5.0)]
    trace = generate_trace("sharegpt", 0.0, num_requests=10, seed=0, phases=phases)
    assert len(trace) <= 10
    assert all(e.arrival_time < 5.0 for e in trace)


def test_trace_entry_validation():
    with pytest.raises(ValueError):
        TraceEntry(arrival_time=-1.0, prompt_tokens=10, output_tokens=10)
    with pytest.raises(ValueError):
        TraceEntry(arrival_time=0.0, prompt_tokens=0, output_tokens=10)


def test_empty_trace_properties():
    trace = Trace(entries=[])
    assert trace.duration == 0.0
    assert trace.mean_context_tokens == 0.0
    assert len(trace) == 0
