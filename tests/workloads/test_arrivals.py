"""Tests for arrival processes."""

import numpy as np
import pytest

from repro.workloads.arrivals import (
    RatePhase,
    constant_rate_arrivals,
    piecewise_rate_arrivals,
    poisson_arrivals,
)


def test_poisson_count_and_monotonicity():
    times = poisson_arrivals(rate=10.0, n=200, seed=0)
    assert len(times) == 200
    assert all(b > a for a, b in zip(times, times[1:]))


def test_poisson_mean_gap_matches_rate():
    times = poisson_arrivals(rate=5.0, n=5000, seed=1)
    gaps = np.diff([0.0] + times)
    assert np.mean(gaps) == pytest.approx(0.2, rel=0.1)


def test_poisson_deterministic_given_seed():
    assert poisson_arrivals(3.0, 20, seed=9) == poisson_arrivals(3.0, 20, seed=9)


def test_poisson_invalid_rate():
    with pytest.raises(ValueError):
        poisson_arrivals(0.0, 10)


def test_constant_rate_evenly_spaced():
    times = constant_rate_arrivals(rate=4.0, n=8)
    gaps = np.diff(times)
    assert np.allclose(gaps, 0.25)


def test_constant_rate_start_offset():
    times = constant_rate_arrivals(rate=1.0, n=3, start=10.0)
    assert times[0] == pytest.approx(11.0)


def test_rate_phase_validation():
    with pytest.raises(ValueError):
        RatePhase(rate=-1.0, duration=5.0)
    with pytest.raises(ValueError):
        RatePhase(rate=1.0, duration=0.0)


def test_piecewise_respects_idle_phases():
    phases = [
        RatePhase(rate=10.0, duration=10.0),
        RatePhase(rate=1e-9, duration=10.0),
        RatePhase(rate=10.0, duration=10.0),
    ]
    times = piecewise_rate_arrivals(phases, seed=0)
    in_gap = [t for t in times if 10.0 <= t < 20.0]
    assert len(in_gap) == 0
    assert any(t < 10.0 for t in times)
    assert any(t >= 20.0 for t in times)


def test_piecewise_all_arrivals_within_schedule():
    phases = [RatePhase(rate=5.0, duration=4.0), RatePhase(rate=2.0, duration=6.0)]
    times = piecewise_rate_arrivals(phases, seed=3)
    assert all(0.0 <= t < 10.0 for t in times)


def test_piecewise_empty_phases_rejected():
    with pytest.raises(ValueError):
        piecewise_rate_arrivals([])
