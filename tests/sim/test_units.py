"""Tests for the static pipeline execution unit."""

import pytest

from repro.hardware.cluster import simple_cluster
from repro.models.spec import get_model_spec
from repro.parallel.config import InstanceParallelConfig, StageConfig
from repro.sim.request import Request, RequestStatus
from repro.sim.scheduler import SchedulerLimits
from repro.sim.units import StaticPipelineUnit


def make_unit(model_name="llama-13b", mode="both", limits=None, cluster=None):
    cluster = cluster or simple_cluster("a100", "rtx3090", n_high=1, n_low=2)
    model = get_model_spec(model_name)
    a100 = cluster.devices_of_type("a100")
    r3090 = cluster.devices_of_type("rtx3090")
    stages = [
        StageConfig(devices=a100, num_layers=30),
        StageConfig(devices=r3090, num_layers=model.num_layers - 30),
    ]
    config = InstanceParallelConfig(stages=stages)
    return StaticPipelineUnit("unit-0", config, model, cluster, limits=limits, mode=mode)


def make_request(req_id=0, prompt=200, output=4, arrival=0.0):
    return Request(request_id=req_id, arrival_time=arrival, prompt_tokens=prompt, output_tokens=output)


class TestConstruction:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            make_unit(mode="hybrid")

    def test_layer_count_checked(self):
        cluster = simple_cluster("a100", "rtx3090")
        model = get_model_spec("llama-13b")
        config = InstanceParallelConfig(
            stages=[StageConfig(devices=cluster.devices_of_type("a100"), num_layers=10)]
        )
        with pytest.raises(ValueError):
            StaticPipelineUnit("bad", config, model, cluster)

    def test_kv_capacity_positive(self):
        unit = make_unit()
        assert unit.available_kv_bytes() > 0
        assert all(0.0 <= u <= 1.0 for u in unit.kv_utilization().values())


class TestIterationLoop:
    def test_idle_unit_returns_none(self):
        unit = make_unit()
        assert not unit.has_work()
        assert unit.next_iteration(0.0) is None

    def test_prefill_then_decode_until_finished(self):
        unit = make_unit()
        req = make_request(output=3)
        unit.enqueue(req, 0.0)
        assert unit.has_work()

        now = 0.0
        it = unit.next_iteration(now)
        assert it is not None and it.prefill_requests == [req]
        assert it.duration > 0
        now += it.duration
        outcome = unit.complete_iteration(it, now)
        assert outcome.finished == []
        assert req.status == RequestStatus.DECODING
        assert req.ttft is not None

        finished = []
        for _ in range(10):
            it = unit.next_iteration(now)
            if it is None:
                break
            now += it.duration
            finished += unit.complete_iteration(it, now).finished
        assert req in finished
        assert req.generated_tokens == 3
        assert unit.num_running == 0
        # All cache released once the request retires.
        assert all(u == 0.0 for u in unit.kv_utilization().values())

    def test_decode_iteration_module_times_present(self):
        unit = make_unit()
        req = make_request(output=3)
        unit.enqueue(req, 0.0)
        it = unit.next_iteration(0.0)
        unit.complete_iteration(it, it.duration)
        decode_it = unit.next_iteration(it.duration)
        assert decode_it.has_decode
        assert decode_it.module_times["mlp"] > 0
        assert decode_it.module_times["attention"] > 0
        assert decode_it.module_times["iteration"] >= decode_it.module_times["mlp"]

    def test_batched_prefill_admission(self):
        unit = make_unit()
        reqs = [make_request(i, prompt=100, output=2) for i in range(4)]
        for r in reqs:
            unit.enqueue(r, 0.0)
        it = unit.next_iteration(0.0)
        assert len(it.prefill_requests) == 4

    def test_prefill_time_longer_for_longer_prompts(self):
        unit = make_unit()
        short = make_request(0, prompt=128, output=2)
        unit.enqueue(short, 0.0)
        it_short = unit.next_iteration(0.0)
        unit.complete_iteration(it_short, 1.0)

        unit2 = make_unit()
        long = make_request(1, prompt=2048, output=2)
        unit2.enqueue(long, 0.0)
        it_long = unit2.next_iteration(0.0)
        assert it_long.duration > it_short.duration


class TestModes:
    def test_prefill_mode_emits_handoff(self):
        unit = make_unit(mode="prefill")
        req = make_request(output=5)
        unit.enqueue(req, 0.0)
        it = unit.next_iteration(0.0)
        outcome = unit.complete_iteration(it, it.duration)
        assert len(outcome.handoffs) == 1
        handoff = outcome.handoffs[0]
        assert handoff.request is req
        assert handoff.kv_bytes > 0
        assert req.status == RequestStatus.MIGRATING
        # The prefill copy's cache is released at hand-off.
        assert all(u == 0.0 for u in unit.kv_utilization().values())

    def test_decode_mode_rejects_fresh_requests(self):
        unit = make_unit(mode="decode")
        with pytest.raises(RuntimeError):
            unit.enqueue(make_request(), 0.0)

    def test_decode_mode_serves_prefilled_request(self):
        unit = make_unit(mode="decode")
        req = make_request(output=3)
        req.start_prefill()
        req.begin_migration()
        req.end_migration()
        unit.enqueue_prefilled(req, 0.0)
        now = 0.0
        finished = []
        for _ in range(8):
            it = unit.next_iteration(now)
            if it is None:
                break
            now += it.duration
            finished += unit.complete_iteration(it, now).finished
        assert req in finished
        assert req.ttft is not None  # first token produced on the decode unit

    def test_prefill_mode_rejects_prefilled(self):
        unit = make_unit(mode="prefill")
        with pytest.raises(RuntimeError):
            unit.enqueue_prefilled(make_request(), 0.0)


class TestPreemption:
    def test_lifo_preemption_under_memory_pressure(self):
        # A single P100 holding opt-2.7b leaves little KV room: long-running
        # requests must preempt the most recent one rather than deadlock.
        from repro.hardware.cluster import ClusterBuilder

        cluster = ClusterBuilder().add_host("p100", 1).build()
        model = get_model_spec("opt-2.7b")
        config = InstanceParallelConfig(
            stages=[StageConfig(devices=cluster.devices, num_layers=model.num_layers)]
        )
        unit = StaticPipelineUnit(
            "tiny", config, model, cluster, limits=SchedulerLimits(max_running_requests=64)
        )
        reqs = [make_request(i, prompt=1200, output=300) for i in range(8)]
        for r in reqs:
            unit.enqueue(r, 0.0)
        now, finished = 0.0, []
        for _ in range(600):
            it = unit.next_iteration(now)
            if it is None:
                break
            now += it.duration
            finished += unit.complete_iteration(it, now).finished
        # Either everything eventually finishes (with preemptions) or some are
        # still queued, but the unit must never deadlock or over-commit memory.
        assert len(finished) + unit.num_waiting + unit.num_running + len(unit.dropped) == 8
        assert len(finished) >= 1


class TestChunkedPrefill:
    def chunked_limits(self, chunk=1024, budget=1024):
        return SchedulerLimits(
            max_prefill_tokens_per_iteration=budget, prefill_chunk_tokens=chunk
        )

    def run_until_idle(self, unit, now=0.0, max_iters=200):
        iterations, finished = [], []
        for _ in range(max_iters):
            it = unit.next_iteration(now)
            if it is None:
                break
            iterations.append(it)
            now += it.duration
            finished += unit.complete_iteration(it, now).finished
        return iterations, finished, now

    def test_long_prompt_split_across_iterations(self):
        unit = make_unit(limits=self.chunked_limits(chunk=1024))
        req = make_request(prompt=3000, output=2)
        unit.enqueue(req, 0.0)
        iterations, finished, _ = self.run_until_idle(unit)
        assert req in finished
        # 1024 + 1024 + 952 (final chunk) prefill iterations, then decode.
        chunk_sizes = []
        for it in iterations:
            chunk_sizes += [c.new_tokens for c in it.partial_prefills]
        assert chunk_sizes == [1024, 1024]
        assert req.prefilled_tokens == 3000

    def test_ttft_stamped_at_last_chunk(self):
        unit = make_unit(limits=self.chunked_limits(chunk=1024))
        req = make_request(prompt=3000, output=2)
        unit.enqueue(req, 0.0)
        partial_end = 0.0
        now = 0.0
        for _ in range(10):
            it = unit.next_iteration(now)
            if it is None:
                break
            now += it.duration
            unit.complete_iteration(it, now)
            if it.partial_prefills:
                partial_end = now
                assert req.prefill_completion_time is None  # no token yet
        assert req.prefill_completion_time is not None
        assert req.prefill_completion_time > partial_end

    def test_decode_interleaves_with_prefill_chunks(self):
        unit = make_unit(limits=self.chunked_limits(chunk=512))
        short = make_request(0, prompt=100, output=20)
        unit.enqueue(short, 0.0)
        # Let the short request prefill and start decoding.
        it = unit.next_iteration(0.0)
        now = it.duration
        unit.complete_iteration(it, now)
        long = make_request(1, prompt=4000, output=2)
        unit.enqueue(long, now)
        mixed = 0
        for _ in range(40):
            it = unit.next_iteration(now)
            if it is None:
                break
            if it.partial_prefills and short in it.decode_requests:
                mixed += 1
            now += it.duration
            unit.complete_iteration(it, now)
        # Decode is not starved: it rides along with every prefill chunk.
        assert mixed >= 4
        assert short.is_finished and long.is_finished

    def test_preempted_chunked_request_restarts_from_scratch(self):
        unit = make_unit(limits=self.chunked_limits(chunk=512))
        req = make_request(prompt=1500, output=2)
        unit.enqueue(req, 0.0)
        it = unit.next_iteration(0.0)
        unit.complete_iteration(it, it.duration)
        assert req.prefilled_tokens == 512
        unit._preempt(req)
        assert req.prefilled_tokens == 0
        iterations, finished, _ = self.run_until_idle(unit, now=it.duration)
        assert req in finished

    def test_chunking_off_is_monolithic(self):
        unit = make_unit(limits=SchedulerLimits())
        req = make_request(prompt=3000, output=2)
        unit.enqueue(req, 0.0)
        it = unit.next_iteration(0.0)
        assert it.partial_prefills == []
        assert it.prefill_requests == [req]


class TestHandoffShed:
    def oversized(self, req_id, unit):
        # A context no empty cache on this unit could ever hold.
        managers = unit._manager_list
        max_tokens = min(m.total_blocks * m.block_size for m in managers)
        return make_request(req_id, prompt=max_tokens + 1024, output=4)

    def prefilled(self, req):
        req.start_prefill()
        req.begin_migration()
        req.end_migration()
        return req

    def test_impossible_handoffs_shed_not_deadlocked(self):
        # Regression: two queued hand-offs that can never fit used to make the
        # decode unit spin forever (the old escape hatch only fired for a
        # single queued request).
        unit = make_unit(mode="decode")
        doomed = [self.prefilled(self.oversized(i, unit)) for i in range(2)]
        ok = self.prefilled(make_request(7, prompt=200, output=2))
        for req in doomed:
            unit.enqueue_prefilled(req, 0.0)
        unit.enqueue_prefilled(ok, 0.0)
        it = unit.next_iteration(0.0)
        assert unit.dropped == doomed
        # The request queued behind the doomed ones is admitted and decodes.
        assert it is not None and ok in it.decode_requests
        now = it.duration
        finished = unit.complete_iteration(it, now).finished
        while not ok.is_finished:
            it = unit.next_iteration(now)
            assert it is not None
            now += it.duration
            finished += unit.complete_iteration(it, now).finished
        assert ok in finished

    def test_blocked_but_feasible_handoff_waits(self):
        unit = make_unit(mode="decode")
        # Fill the unit with a running request, then queue a hand-off that fits
        # an empty cache but not the current one: it must wait, not shed.
        managers = unit._manager_list
        max_tokens = min(m.total_blocks * m.block_size for m in managers)
        hog = self.prefilled(make_request(0, prompt=int(max_tokens * 0.9), output=50))
        unit.enqueue_prefilled(hog, 0.0)
        it = unit.next_iteration(0.0)
        assert hog in it.decode_requests
        blocked = self.prefilled(make_request(1, prompt=int(max_tokens * 0.5), output=4))
        unit.enqueue_prefilled(blocked, 0.0)
        it2 = unit.next_iteration(1.0)
        assert blocked not in unit.dropped
        assert blocked in unit.pending_prefilled
