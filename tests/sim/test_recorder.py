"""Tests for the time-series recorder."""

import numpy as np
import pytest

from repro.sim.recorder import PrefixedRecorderView, TimeSeriesRecorder


def test_record_and_query():
    rec = TimeSeriesRecorder()
    rec.record("cache_usage", "a100:0", 1.0, 0.5)
    rec.record("cache_usage", "a100:0", 2.0, 0.7)
    assert rec.series_names() == ["cache_usage"]
    assert rec.keys("cache_usage") == ["a100:0"]
    assert rec.last_value("cache_usage", "a100:0") == 0.7
    assert rec.max_value("cache_usage", "a100:0") == 0.7


def test_record_many():
    rec = TimeSeriesRecorder()
    rec.record_many("heads", 3.0, {"a100:0": 40.0, "rtx3090:1": 8.0})
    assert set(rec.keys("heads")) == {"a100:0", "rtx3090:1"}


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        TimeSeriesRecorder().record("x", "k", -1.0, 0.0)


def test_missing_series_defaults():
    rec = TimeSeriesRecorder()
    assert rec.last_value("nope", "k") == 0.0
    assert rec.max_value("nope", "k") == 0.0
    assert rec.raw("nope", "k") == []


def test_resample_carries_last_value_forward():
    rec = TimeSeriesRecorder()
    rec.record("s", "k", 1.0, 10.0)
    rec.record("s", "k", 5.0, 20.0)
    grid = [0.0, 1.0, 3.0, 5.0, 7.0]
    values = rec.resample("s", "k", grid)
    assert np.allclose(values, [0.0, 10.0, 10.0, 20.0, 20.0])


def test_resample_empty_series_is_zero():
    rec = TimeSeriesRecorder()
    assert np.allclose(rec.resample("s", "k", [0.0, 1.0]), [0.0, 0.0])


class TestPrefixedRecorderView:
    def test_writes_are_prefixed(self):
        rec = TimeSeriesRecorder()
        view = PrefixedRecorderView(rec, "r0/")
        view.record("cache_usage", "a100:0", 1.0, 0.5)
        view.record_many("heads", 2.0, {"a100:0": 40.0, "rtx3090:1": 8.0})
        assert rec.keys("cache_usage") == ["r0/a100:0"]
        assert set(rec.keys("heads")) == {"r0/a100:0", "r0/rtx3090:1"}

    def test_prefix_must_be_namespace_like(self):
        with pytest.raises(ValueError, match="must end with"):
            PrefixedRecorderView(TimeSeriesRecorder(), "r0")

    def test_non_write_methods_pass_through(self):
        """Every recorder method beyond record/record_many must work on the
        view (defensive __getattr__ forwarding, not a frozen method list)."""
        rec = TimeSeriesRecorder()
        view = PrefixedRecorderView(rec, "r1/")
        view.record("s", "k", 1.0, 10.0)
        view.record("s", "k", 5.0, 20.0)
        assert view.series_names() == ["s"]
        assert view.keys("s") == ["r1/k"]
        assert view.raw("s", "r1/k") == [(1.0, 10.0), (5.0, 20.0)]
        assert view.last_value("s", "r1/k") == 20.0
        assert view.max_value("s", "r1/k") == 20.0
        assert np.allclose(view.resample("s", "r1/k", [1.0, 5.0]), [10.0, 20.0])
        assert view.samples is rec.samples
        with pytest.raises(AttributeError):
            view.not_a_recorder_method

    def test_prefixed_and_unprefixed_keys_never_collide(self):
        """A key written through a view can never equal a key written directly
        (or through a different view): prefixes end with '/' and device keys
        contain none."""
        rec = TimeSeriesRecorder()
        v0 = PrefixedRecorderView(rec, "r0/")
        v1 = PrefixedRecorderView(rec, "r1/")
        for key in ("a100:0", "r0"):  # even a key spelled like a prefix stem
            rec.record("s", key, 0.0, 1.0)
            v0.record("s", key, 0.0, 2.0)
            v1.record("s", key, 0.0, 3.0)
        keys = rec.keys("s")
        assert len(keys) == 6, keys
        assert rec.last_value("s", "a100:0") == 1.0
        assert rec.last_value("s", "r0/a100:0") == 2.0
        assert rec.last_value("s", "r1/a100:0") == 3.0

    def test_views_nest(self):
        rec = TimeSeriesRecorder()
        inner = PrefixedRecorderView(PrefixedRecorderView(rec, "outer/"), "inner/")
        inner.record("s", "k", 0.0, 1.0)
        assert rec.keys("s") == ["outer/inner/k"]


class TestBoundedRecorder:
    def test_downsampling_caps_length_and_keeps_extremes(self):
        rec = TimeSeriesRecorder(max_samples_per_key=8)
        for i in range(100):
            rec.record("s", "k", float(i), float(i))
        data = rec.raw("s", "k")
        assert len(data) <= 8
        assert data[-1] == (99.0, 99.0)  # newest sample always survives
        assert rec.last_value("s", "k") == 99.0
        assert rec.samples_dropped > 0

    def test_max_value_exact_under_downsampling(self):
        rec = TimeSeriesRecorder(max_samples_per_key=4)
        values = [3.0, 97.0, 1.0, 5.0, 2.0, 8.0, 4.0, 6.0, 7.0]
        for i, v in enumerate(values):
            rec.record("s", "k", float(i), v)
        # 97.0 may have been thinned out of the sample list, but the running
        # maximum never forgets it.
        assert rec.max_value("s", "k") == 97.0

    def test_resample_cache_invalidated_on_append(self):
        rec = TimeSeriesRecorder()
        rec.record("s", "k", 1.0, 10.0)
        assert np.allclose(rec.resample("s", "k", [1.0, 2.0]), [10.0, 10.0])
        rec.record("s", "k", 2.0, 20.0)  # must invalidate the cached arrays
        assert np.allclose(rec.resample("s", "k", [1.0, 2.0]), [10.0, 20.0])

    def test_max_seeded_from_constructor_samples(self):
        rec = TimeSeriesRecorder(samples={"s": {"k": [(0.0, 5.0), (1.0, 3.0)]}})
        assert rec.max_value("s", "k") == 5.0

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(max_samples_per_key=1)
