"""Tests for the time-series recorder."""

import numpy as np
import pytest

from repro.sim.recorder import TimeSeriesRecorder


def test_record_and_query():
    rec = TimeSeriesRecorder()
    rec.record("cache_usage", "a100:0", 1.0, 0.5)
    rec.record("cache_usage", "a100:0", 2.0, 0.7)
    assert rec.series_names() == ["cache_usage"]
    assert rec.keys("cache_usage") == ["a100:0"]
    assert rec.last_value("cache_usage", "a100:0") == 0.7
    assert rec.max_value("cache_usage", "a100:0") == 0.7


def test_record_many():
    rec = TimeSeriesRecorder()
    rec.record_many("heads", 3.0, {"a100:0": 40.0, "rtx3090:1": 8.0})
    assert set(rec.keys("heads")) == {"a100:0", "rtx3090:1"}


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        TimeSeriesRecorder().record("x", "k", -1.0, 0.0)


def test_missing_series_defaults():
    rec = TimeSeriesRecorder()
    assert rec.last_value("nope", "k") == 0.0
    assert rec.max_value("nope", "k") == 0.0
    assert rec.raw("nope", "k") == []


def test_resample_carries_last_value_forward():
    rec = TimeSeriesRecorder()
    rec.record("s", "k", 1.0, 10.0)
    rec.record("s", "k", 5.0, 20.0)
    grid = [0.0, 1.0, 3.0, 5.0, 7.0]
    values = rec.resample("s", "k", grid)
    assert np.allclose(values, [0.0, 10.0, 10.0, 20.0, 20.0])


def test_resample_empty_series_is_zero():
    rec = TimeSeriesRecorder()
    assert np.allclose(rec.resample("s", "k", [0.0, 1.0]), [0.0, 0.0])
