"""Tests for the discrete-event engine with simple serving systems."""

import pytest

from repro.baselines.splitwise import build_splitwise_system
from repro.baselines.static_tp import build_static_tp_system
from repro.hardware.cluster import paper_cluster, simple_cluster
from repro.models.spec import get_model_spec
from repro.sim.engine import Engine
from repro.workloads.trace import Trace, TraceEntry, generate_trace


def small_trace(n=12, rate=4.0, dataset="sharegpt", seed=0):
    return generate_trace(dataset, rate, n, seed=seed)


def test_engine_completes_all_requests_static_tp():
    cluster = simple_cluster("a100", "rtx3090", n_high=1, n_low=2)
    system = build_static_tp_system(cluster, get_model_spec("llama-13b"))
    result = Engine(system).run(small_trace(10))
    assert result.summary.num_finished == 10
    assert result.summary.mean_normalized_latency > 0
    assert result.system_name == "static-tp"


def test_engine_results_deterministic():
    def run_once():
        cluster = simple_cluster("a100", "rtx3090", n_high=1, n_low=2)
        system = build_static_tp_system(cluster, get_model_spec("llama-13b"))
        return Engine(system).run(small_trace(8, seed=3)).summary

    a, b = run_once(), run_once()
    assert a.mean_normalized_latency == pytest.approx(b.mean_normalized_latency)
    assert a.p95_ttft == pytest.approx(b.p95_ttft)


def test_engine_latency_increases_with_load():
    def latency(rate):
        cluster = simple_cluster("a100", "rtx3090", n_high=1, n_low=2)
        system = build_static_tp_system(cluster, get_model_spec("llama-13b"))
        return Engine(system).run(small_trace(30, rate=rate, seed=1)).summary.mean_normalized_latency

    assert latency(40.0) > latency(0.5)


def test_engine_empty_trace():
    cluster = simple_cluster("a100", "rtx3090", n_high=1, n_low=2)
    system = build_static_tp_system(cluster, get_model_spec("llama-13b"))
    result = Engine(system).run(Trace(entries=[]))
    assert result.summary.num_finished == 0


def test_engine_max_time_cutoff():
    cluster = simple_cluster("a100", "rtx3090", n_high=1, n_low=2)
    system = build_static_tp_system(cluster, get_model_spec("llama-13b"))
    entries = [TraceEntry(arrival_time=1e6, prompt_tokens=100, output_tokens=10)]
    result = Engine(system, max_simulated_time=10.0).run(Trace(entries=entries))
    assert result.summary.num_finished == 0


def test_engine_records_module_times_for_decode_iterations():
    cluster = simple_cluster("a100", "rtx3090", n_high=1, n_low=2)
    system = build_static_tp_system(cluster, get_model_spec("llama-13b"))
    result = Engine(system).run(small_trace(10))
    assert "mlp" in result.metrics.module_samples
    assert "attention" in result.metrics.module_samples


def test_engine_records_cache_usage_series():
    cluster = simple_cluster("a100", "rtx3090", n_high=1, n_low=2)
    system = build_static_tp_system(cluster, get_model_spec("llama-13b"))
    result = Engine(system).run(small_trace(10))
    assert "cache_usage" in result.recorder.series_names()


def test_splitwise_handoff_path_end_to_end():
    cluster = paper_cluster()
    system = build_splitwise_system(cluster, get_model_spec("llama-13b"))
    result = Engine(system).run(small_trace(10))
    assert result.summary.num_finished == 10
    assert system.num_migrations == 10
    assert system.total_migrated_bytes > 0
    # TTFT must include the migration delay, so it can't be smaller than the
    # raw prefill time alone would suggest; here we just require positivity
    # and that every request produced its full output.
    assert result.summary.mean_ttft > 0


def test_truncated_defer_retries_counted_as_rejections():
    """Regression: a deferred arrival whose retry lands past the horizon
    must still be counted (as a rejection) instead of vanishing from the
    rejection-rate denominator."""
    from repro.api import build_replicated_system, run_system
    from repro.core.elasticity import QueueThresholdAdmission

    system = build_replicated_system(
        "static-tp", "llama-13b", 1, cluster_kind="small",
        admission=QueueThresholdAdmission(max_queue_depth=1, mode="defer", retry_delay=5.0),
    )
    # Saturate instantly: everything past the first few arrivals defers, and
    # the tight horizon strands the retries.
    trace = generate_trace("sharegpt", 50.0, 40, seed=0)
    result = run_system(system, trace, max_simulated_time=1.0)
    s = result.summary
    assert result.truncated and result.truncation_reason == "max_simulated_time"
    assert s.num_dropped_retries > 0
    assert s.num_rejected >= s.num_dropped_retries
    # Offered load is conserved: every trace entry arrived before the cutoff
    # and was either admitted or (eventually) rejected, so the rejection-rate
    # denominator is exactly the trace length -- dropped retries included.
    assert s.rejection_rate == pytest.approx(s.num_rejected / len(trace))


def test_defer_retry_served_within_horizon_not_counted_dropped():
    from repro.api import build_replicated_system, run_system
    from repro.core.elasticity import QueueThresholdAdmission

    system = build_replicated_system(
        "static-tp", "llama-13b", 1, cluster_kind="small",
        admission=QueueThresholdAdmission(max_queue_depth=2, mode="defer", retry_delay=0.25),
    )
    trace = generate_trace("sharegpt", 20.0, 24, seed=0)
    result = run_system(system, trace, max_simulated_time=600.0)
    s = result.summary
    assert not result.truncated
    assert s.num_dropped_retries == 0
    assert s.num_finished == 24
