"""Streaming-trace engine tier: parity, truncation flags, bounded metrics.

The load-bearing guarantees of the large-trace replay path:

* lazy arrival feeding is *bit-identical* to the historical pre-push loop
  (same entries in a list ``Trace`` vs a ``StreamingTrace`` produce the same
  summary row),
* runs cut short by an engine safety limit say so (``truncated`` +
  ``truncation_reason``), for both causes,
* the bounded-memory collector's GK sketch tracks ``np.percentile`` within
  its documented rank-error bound across seeds.
"""

import numpy as np
import pytest

from repro.baselines.static_tp import build_static_tp_system
from repro.config import MetricsSpec
from repro.experiments.runner import summary_row
from repro.hardware.cluster import simple_cluster
from repro.models.spec import get_model_spec
from repro.sim.engine import Engine
from repro.sim.metrics import GKQuantileSketch, MetricsCollector
from repro.workloads.trace import StreamingTrace, Trace, TraceEntry, generate_trace


def _system():
    cluster = simple_cluster("a100", "rtx3090", n_high=1, n_low=2)
    return build_static_tp_system(cluster, get_model_spec("llama-13b"))


# ------------------------------------------------------------------ parity


def test_streaming_trace_bit_identical_to_list_trace():
    trace = generate_trace("sharegpt", 8.0, 64, seed=0)
    stream = StreamingTrace.from_entries(
        trace.entries, dataset=trace.dataset, request_rate=trace.request_rate
    )
    row_list = summary_row(Engine(_system()).run(trace))
    row_stream = summary_row(Engine(_system()).run(stream))
    assert row_list == row_stream


def test_streaming_parity_across_seeds_and_datasets():
    for seed, dataset in [(1, "humaneval"), (2, "sharegpt")]:
        trace = generate_trace(dataset, 6.0, 32, seed=seed)
        stream = StreamingTrace.from_entries(trace.entries)
        r_list = Engine(_system()).run(trace)
        r_stream = Engine(_system()).run(stream)
        assert summary_row(r_list) == summary_row(r_stream)
        assert r_list.wall_clock_events == r_stream.wall_clock_events


def test_engine_accepts_bare_entry_iterator():
    trace = generate_trace("sharegpt", 8.0, 16, seed=0)
    result = Engine(_system()).run(iter(trace.entries))
    assert result.summary.num_finished == 16


# ------------------------------------------------------------------ truncation


def test_truncation_flag_max_events():
    trace = generate_trace("sharegpt", 8.0, 32, seed=0)
    result = Engine(_system(), max_events=10).run(trace)
    assert result.truncated
    assert result.truncation_reason == "max_events"
    # Only fully processed events are counted.
    assert result.wall_clock_events == 10


def test_truncation_flag_max_simulated_time():
    entries = [
        TraceEntry(arrival_time=1.0, prompt_tokens=100, output_tokens=10),
        TraceEntry(arrival_time=1e6, prompt_tokens=100, output_tokens=10),
    ]
    result = Engine(_system(), max_simulated_time=100.0).run(Trace(entries=entries))
    assert result.truncated
    assert result.truncation_reason == "max_simulated_time"
    assert result.summary.num_finished == 1


def test_completed_run_is_not_truncated():
    result = Engine(_system()).run(generate_trace("sharegpt", 8.0, 12, seed=0))
    assert not result.truncated
    assert result.truncation_reason is None
    assert result.summary.num_finished == 12


# ------------------------------------------------------------------ bounded metrics


def test_bounded_collector_matches_exact_within_tolerance():
    trace = generate_trace("sharegpt", 8.0, 64, seed=0)
    exact = Engine(_system()).run(trace)
    bounded = Engine(
        _system(), collector=MetricsSpec(mode="bounded").build_collector()
    ).run(trace)
    se, sb = exact.summary, bounded.summary
    assert sb.num_finished == se.num_finished
    assert sb.throughput_tokens_per_s == pytest.approx(se.throughput_tokens_per_s)
    assert sb.mean_normalized_latency == pytest.approx(se.mean_normalized_latency)
    assert sb.mean_ttft == pytest.approx(se.mean_ttft)
    # P95s come from the sketch: rank error <= eps*n, which at n=64 and
    # eps=0.005 means the exact order statistic.
    assert sb.p95_ttft == pytest.approx(se.p95_ttft, rel=0.1)
    # No per-request state retained.
    assert bounded.metrics.records == []
    assert bounded.metrics.module_samples == {}


def test_bounded_collector_module_stats():
    trace = generate_trace("sharegpt", 8.0, 32, seed=0)
    exact = Engine(_system()).run(trace)
    bounded = Engine(
        _system(), collector=MetricsCollector(bounded_memory=True)
    ).run(trace)
    assert set(bounded.summary.mean_module_latency) == set(exact.summary.mean_module_latency)
    for name, mean in bounded.summary.mean_module_latency.items():
        assert mean == pytest.approx(exact.summary.mean_module_latency[name])


def test_summary_is_cached_and_invalidated():
    collector = MetricsCollector()
    collector.observe_arrival(1.0)
    first = collector.summary()
    assert collector.summary() is first  # memoized between observations
    collector.observe_arrival(2.0)
    assert collector.summary() is not first


def test_gk_sketch_tracks_numpy_percentile_across_seeds():
    eps = 0.01
    n = 2000
    for seed in range(5):
        rng = np.random.default_rng(seed)
        values = rng.exponential(1.0, size=n)
        sketch = GKQuantileSketch(epsilon=eps)
        for v in values:
            sketch.add(float(v))
        ordered = np.sort(values)
        for q in (0.5, 0.9, 0.95, 0.99):
            got = sketch.query(q)
            # The GK guarantee is on *rank*: the returned value's position in
            # the sorted data lies within eps*n of the target rank.
            rank = np.searchsorted(ordered, got, side="left")
            assert abs(rank - q * n) <= eps * n + 1, (seed, q)
        assert sketch.num_tuples < n / 4  # actually compressing


def test_gk_sketch_edge_cases():
    sketch = GKQuantileSketch()
    assert sketch.query(0.5) == 0.0  # empty
    sketch.add(42.0)
    assert sketch.query(0.0) == 42.0
    assert sketch.query(1.0) == 42.0
    with pytest.raises(ValueError):
        sketch.query(1.5)
    with pytest.raises(ValueError):
        GKQuantileSketch(epsilon=0.0)


# ------------------------------------------------------------------ streaming traces


def test_streaming_trace_rejects_out_of_order_entries():
    entries = [
        TraceEntry(arrival_time=2.0, prompt_tokens=10, output_tokens=5),
        TraceEntry(arrival_time=1.0, prompt_tokens=10, output_tokens=5),
    ]
    stream = StreamingTrace(factory=lambda: iter(entries))
    with pytest.raises(ValueError, match="sorted by arrival time"):
        list(stream)


def test_streaming_trace_is_reiterable():
    trace = generate_trace("sharegpt", 8.0, 8, seed=0)
    stream = StreamingTrace.from_entries(trace.entries)
    assert list(stream) == list(stream)
    assert stream.length_hint == 8
    assert stream.materialize().entries == list(trace.entries)
