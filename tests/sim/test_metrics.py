"""Tests for metrics collection and summaries."""

import pytest

from repro.sim.metrics import MetricsCollector, RequestRecord, percentile
from repro.sim.request import Request, RequestStatus


def finished_request(req_id=0, arrival=0.0, prompt=100, output=4, iteration=0.5):
    req = Request(request_id=req_id, arrival_time=arrival, prompt_tokens=prompt, output_tokens=output)
    req.start_prefill()
    now = arrival + iteration
    req.complete_prefill(now)
    while not req.is_finished:
        now += iteration
        req.add_decode_token(now)
    return req


def test_percentile_empty_and_basic():
    assert percentile([], 95) == 0.0
    assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)
    with pytest.raises(ValueError):
        percentile([1], 101)


def test_record_from_unfinished_rejected():
    req = Request(request_id=0, arrival_time=0, prompt_tokens=10, output_tokens=5)
    with pytest.raises(ValueError):
        RequestRecord.from_request(req)


def test_record_fields():
    record = RequestRecord.from_request(finished_request())
    assert record.output_tokens == 4
    assert record.ttft == pytest.approx(0.5)
    assert record.tpot == pytest.approx(0.5)
    assert record.normalized_latency == pytest.approx(2.0 / 4)


def test_collector_summary():
    collector = MetricsCollector()
    for i in range(10):
        collector.observe_arrival(float(i))
        collector.observe_finish(finished_request(req_id=i, arrival=float(i)))
    summary = collector.summary()
    assert summary.num_finished == 10
    assert summary.mean_ttft == pytest.approx(0.5)
    assert summary.throughput_rps > 0
    assert summary.throughput_tokens_per_s > 0
    assert summary.total_preemptions == 0
    assert summary.normalized_latency == summary.mean_normalized_latency


def test_collector_module_times():
    collector = MetricsCollector()
    for value in (0.01, 0.02, 0.03):
        collector.observe_module_times({"mlp": value, "attention": value / 2})
    summary = collector.summary()
    assert summary.mean_module_latency["mlp"] == pytest.approx(0.02)
    assert summary.p95_module_latency["attention"] <= 0.015


def test_empty_collector_summary_is_safe():
    summary = MetricsCollector().summary()
    assert summary.num_finished == 0
    assert summary.mean_normalized_latency == 0.0
    assert summary.p95_ttft == 0.0


def test_percentile_accepts_generator_and_empty():
    assert percentile((x for x in []), 95) == 0.0
    assert percentile((float(x) for x in range(5)), 0) == 0.0
    assert percentile([], 50) == 0.0


def test_zero_output_request_record_is_safe():
    # A request shed/force-finished with no tokens must not divide by zero or
    # raise on the None ttft/tpot.
    req = Request(request_id=9, arrival_time=1.0, prompt_tokens=10, output_tokens=1)
    req.status = RequestStatus.FINISHED
    req.finish_time = 3.0
    record = RequestRecord.from_request(req)
    assert record.output_tokens == 0
    assert record.ttft == 0.0
    assert record.tpot == 0.0
    assert record.normalized_latency == 0.0
