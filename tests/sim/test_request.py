"""Tests for the request lifecycle state machine."""

import pytest

from repro.sim.request import Request, RequestStatus


def make(prompt=100, output=5, arrival=1.0):
    return Request(request_id=0, arrival_time=arrival, prompt_tokens=prompt, output_tokens=output)


def test_initial_state():
    req = make()
    assert req.status == RequestStatus.QUEUED
    assert req.context_length == 100
    assert req.remaining_tokens == 5
    assert not req.is_finished


def test_validation():
    with pytest.raises(ValueError):
        Request(request_id=0, arrival_time=0.0, prompt_tokens=0, output_tokens=1)
    with pytest.raises(ValueError):
        Request(request_id=0, arrival_time=0.0, prompt_tokens=1, output_tokens=0)
    with pytest.raises(ValueError):
        Request(request_id=0, arrival_time=-1.0, prompt_tokens=1, output_tokens=1)


def test_full_lifecycle_and_metrics():
    req = make(prompt=100, output=3, arrival=1.0)
    req.start_prefill()
    req.complete_prefill(now=2.0)
    assert req.status == RequestStatus.DECODING
    assert req.generated_tokens == 1
    req.add_decode_token(now=2.5)
    req.add_decode_token(now=3.0)
    assert req.is_finished
    assert req.ttft == pytest.approx(1.0)
    assert req.tpot == pytest.approx(0.5)
    assert req.normalized_latency == pytest.approx((3.0 - 1.0) / 3)
    assert req.context_length == 103


def test_single_token_request_finishes_at_prefill():
    req = make(output=1)
    req.start_prefill()
    req.complete_prefill(now=5.0)
    assert req.is_finished
    assert req.tpot == 0.0


def test_metrics_none_before_completion():
    req = make()
    assert req.ttft is None
    assert req.tpot is None
    assert req.normalized_latency is None


def test_invalid_transitions():
    req = make()
    with pytest.raises(RuntimeError):
        req.complete_prefill(1.0)
    with pytest.raises(RuntimeError):
        req.add_decode_token(1.0)
    req.start_prefill()
    with pytest.raises(RuntimeError):
        req.start_prefill()


def test_preemption_and_recovery():
    req = make(output=10)
    req.start_prefill()
    req.complete_prefill(2.0)
    req.add_decode_token(2.5)
    req.preempt()
    assert req.status == RequestStatus.PREEMPTED
    assert req.num_preemptions == 1
    # Re-prefill covers prompt + already generated tokens.
    assert req.context_length == 102
    req.start_prefill()
    req.complete_prefill(4.0)
    assert req.generated_tokens == 3
    # TTFT keeps the first prefill completion.
    assert req.ttft == pytest.approx(1.0)


def test_cannot_preempt_finished():
    req = make(output=1)
    req.start_prefill()
    req.complete_prefill(1.5)
    with pytest.raises(RuntimeError):
        req.preempt()


def test_migration_transitions():
    req = make(output=3)
    req.start_prefill()
    req.begin_migration()
    assert req.status == RequestStatus.MIGRATING
    req.end_migration()
    assert req.status == RequestStatus.DECODING
    with pytest.raises(RuntimeError):
        req.end_migration()


def test_migration_requires_active_request():
    req = make()
    with pytest.raises(RuntimeError):
        req.begin_migration()


def test_prefill_progress_tracking():
    req = make(prompt=1000, output=3)
    assert req.prefill_target == 1000
    assert req.remaining_prefill_tokens == 1000
    req.start_prefill()
    req.advance_prefill(400)
    assert req.prefilled_tokens == 400
    assert req.remaining_prefill_tokens == 600
    assert req.is_partially_prefilled
    req.complete_prefill(1.0)
    assert req.prefilled_tokens == 1000  # the whole prompt was prefilled
    assert not req.is_partially_prefilled
    assert req.generated_tokens == 1


def test_advance_prefill_rejects_final_chunk():
    req = make(prompt=1000, output=3)
    req.start_prefill()
    with pytest.raises(ValueError):
        req.advance_prefill(1000)  # the last chunk must go through complete_prefill
    with pytest.raises(ValueError):
        req.advance_prefill(0)


def test_advance_prefill_requires_prefilling_status():
    req = make(prompt=1000, output=3)
    with pytest.raises(RuntimeError):
        req.advance_prefill(100)


def test_preemption_resets_prefill_progress():
    req = make(prompt=1000, output=3)
    req.start_prefill()
    req.advance_prefill(400)
    req.preempt()
    assert req.prefilled_tokens == 0
    assert req.remaining_prefill_tokens == req.prefill_target
