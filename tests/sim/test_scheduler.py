"""Tests for the continuous-batching admission policy."""

from collections import deque

import pytest

from repro.sim.request import Request
from repro.sim.scheduler import ContinuousBatchingPolicy, SchedulerLimits


def make_queue(lengths):
    return deque(
        Request(request_id=i, arrival_time=0.0, prompt_tokens=length, output_tokens=10)
        for i, length in enumerate(lengths)
    )


def test_limits_validation():
    with pytest.raises(ValueError):
        SchedulerLimits(max_running_requests=0)
    with pytest.raises(ValueError):
        SchedulerLimits(max_prefill_tokens_per_iteration=0)
    with pytest.raises(ValueError):
        SchedulerLimits(max_prefills_per_iteration=0)


def test_admits_fifo_until_budget():
    policy = ContinuousBatchingPolicy(SchedulerLimits(max_prefill_tokens_per_iteration=1000))
    waiting = make_queue([400, 400, 400])
    admitted = policy.select_prefills(waiting, num_running=0, can_admit=lambda r: True)
    assert [r.request_id for r in admitted] == [0, 1]
    assert len(waiting) == 1


def test_big_prompt_gets_its_own_iteration():
    policy = ContinuousBatchingPolicy(SchedulerLimits(max_prefill_tokens_per_iteration=1000))
    waiting = make_queue([2000])
    admitted = policy.select_prefills(waiting, 0, lambda r: True)
    assert len(admitted) == 1  # admitted alone even though over budget


def test_blocked_request_stops_admission_fifo():
    policy = ContinuousBatchingPolicy()
    waiting = make_queue([100, 100, 100])
    admitted = policy.select_prefills(waiting, 0, can_admit=lambda r: r.request_id != 1)
    assert [r.request_id for r in admitted] == [0]
    assert waiting[0].request_id == 1  # still at the head, not skipped


def test_respects_running_slots():
    policy = ContinuousBatchingPolicy(SchedulerLimits(max_running_requests=4))
    waiting = make_queue([10] * 5)
    admitted = policy.select_prefills(waiting, num_running=3, can_admit=lambda r: True)
    assert len(admitted) == 1


def test_respects_max_prefills_per_iteration():
    policy = ContinuousBatchingPolicy(SchedulerLimits(max_prefills_per_iteration=2))
    waiting = make_queue([10] * 5)
    admitted = policy.select_prefills(waiting, 0, lambda r: True)
    assert len(admitted) == 2


def test_empty_queue():
    policy = ContinuousBatchingPolicy()
    assert policy.select_prefills(deque(), 0, lambda r: True) == []


def make_chunked_policy(chunk=512, budget=1024, **kw):
    return ContinuousBatchingPolicy(
        SchedulerLimits(
            max_prefill_tokens_per_iteration=budget, prefill_chunk_tokens=chunk, **kw
        )
    )


class TestChunkedAdmission:
    def test_chunk_size_validation(self):
        with pytest.raises(ValueError):
            SchedulerLimits(prefill_chunk_tokens=0)
        with pytest.raises(ValueError):
            SchedulerLimits(prefill_chunk_tokens=-8)

    def test_disabled_chunking_matches_legacy_whole_prefills(self):
        policy = ContinuousBatchingPolicy(SchedulerLimits(max_prefill_tokens_per_iteration=1000))
        waiting = make_queue([400, 400, 400])
        chunks = policy.select_prefill_chunks(waiting, 0, lambda r: True)
        assert [c.request.request_id for c in chunks] == [0, 1]
        assert all(c.is_first and c.completes_prefill for c in chunks)
        assert [c.new_tokens for c in chunks] == [400, 400]
        assert len(waiting) == 1

    def test_oversized_prompt_clamped_not_admitted_whole(self):
        # The legacy bug: a prompt over the budget was waved through whole.
        # With chunking on, the budget is a hard cap.
        policy = make_chunked_policy(chunk=512, budget=1024)
        waiting = make_queue([5000])
        chunks = policy.select_prefill_chunks(waiting, 0, lambda r: True)
        assert len(chunks) == 1
        assert chunks[0].new_tokens == 512
        assert not chunks[0].completes_prefill
        assert waiting[0].request_id == 0  # still at the head

    def test_budget_exactly_consumed(self):
        policy = make_chunked_policy(chunk=400, budget=800)
        waiting = make_queue([400, 400, 400])
        chunks = policy.select_prefill_chunks(waiting, 0, lambda r: True)
        assert sum(c.new_tokens for c in chunks) == 800
        assert [c.request.request_id for c in chunks] == [0, 1]
        assert waiting[0].request_id == 2

    def test_budget_never_exceeded_across_chunks(self):
        policy = make_chunked_policy(chunk=300, budget=700)
        waiting = make_queue([300, 300, 300])
        chunks = policy.select_prefill_chunks(waiting, 0, lambda r: True)
        # 300 + 300 admitted whole, then only 100 of the third fit.
        assert [c.new_tokens for c in chunks] == [300, 300, 100]
        assert sum(c.new_tokens for c in chunks) <= 700
        assert not chunks[-1].completes_prefill
        assert waiting[0].request_id == 2  # partial request holds the head

    def test_partial_request_resumes_at_head(self):
        policy = make_chunked_policy(chunk=512, budget=512)
        waiting = make_queue([1200, 100])
        first = policy.select_prefill_chunks(waiting, 0, lambda r: True)
        assert [c.new_tokens for c in first] == [512]
        head = waiting[0]
        head.start_prefill()
        head.advance_prefill(512)
        second = policy.select_prefill_chunks(waiting, 0, lambda r: True)
        assert [c.new_tokens for c in second] == [512]
        assert second[0].cached_tokens == 512
        assert not second[0].is_first
        head.advance_prefill(512)
        third = policy.select_prefill_chunks(waiting, 0, lambda r: True)
        # Final 176-token chunk completes; the short request rides the budget.
        assert [(c.request.request_id, c.new_tokens) for c in third] == [(0, 176), (1, 100)]
        assert third[0].completes_prefill and third[0].cached_tokens == 1024
        assert not waiting  # both popped

    def test_resuming_request_skips_can_admit(self):
        policy = make_chunked_policy(chunk=256, budget=256)
        waiting = make_queue([1000])
        assert policy.select_prefill_chunks(waiting, 0, lambda r: True)
        waiting[0].start_prefill()
        waiting[0].advance_prefill(256)
        # Its cache is already reserved: a now-full cache must not block resume.
        chunks = policy.select_prefill_chunks(waiting, 0, lambda r: False)
        assert len(chunks) == 1 and chunks[0].cached_tokens == 256

    def test_blocked_first_chunk_stops_admission(self):
        policy = make_chunked_policy(chunk=256, budget=1024)
        waiting = make_queue([100, 100])
        chunks = policy.select_prefill_chunks(waiting, 0, lambda r: r.request_id != 1)
        assert [c.request.request_id for c in chunks] == [0]
        assert waiting[0].request_id == 1  # FIFO preserved
