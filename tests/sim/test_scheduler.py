"""Tests for the continuous-batching admission policy."""

from collections import deque

import pytest

from repro.sim.request import Request
from repro.sim.scheduler import ContinuousBatchingPolicy, SchedulerLimits


def make_queue(lengths):
    return deque(
        Request(request_id=i, arrival_time=0.0, prompt_tokens=l, output_tokens=10)
        for i, l in enumerate(lengths)
    )


def test_limits_validation():
    with pytest.raises(ValueError):
        SchedulerLimits(max_running_requests=0)
    with pytest.raises(ValueError):
        SchedulerLimits(max_prefill_tokens_per_iteration=0)
    with pytest.raises(ValueError):
        SchedulerLimits(max_prefills_per_iteration=0)


def test_admits_fifo_until_budget():
    policy = ContinuousBatchingPolicy(SchedulerLimits(max_prefill_tokens_per_iteration=1000))
    waiting = make_queue([400, 400, 400])
    admitted = policy.select_prefills(waiting, num_running=0, can_admit=lambda r: True)
    assert [r.request_id for r in admitted] == [0, 1]
    assert len(waiting) == 1


def test_big_prompt_gets_its_own_iteration():
    policy = ContinuousBatchingPolicy(SchedulerLimits(max_prefill_tokens_per_iteration=1000))
    waiting = make_queue([2000])
    admitted = policy.select_prefills(waiting, 0, lambda r: True)
    assert len(admitted) == 1  # admitted alone even though over budget


def test_blocked_request_stops_admission_fifo():
    policy = ContinuousBatchingPolicy()
    waiting = make_queue([100, 100, 100])
    admitted = policy.select_prefills(waiting, 0, can_admit=lambda r: r.request_id != 1)
    assert [r.request_id for r in admitted] == [0]
    assert waiting[0].request_id == 1  # still at the head, not skipped


def test_respects_running_slots():
    policy = ContinuousBatchingPolicy(SchedulerLimits(max_running_requests=4))
    waiting = make_queue([10] * 5)
    admitted = policy.select_prefills(waiting, num_running=3, can_admit=lambda r: True)
    assert len(admitted) == 1


def test_respects_max_prefills_per_iteration():
    policy = ContinuousBatchingPolicy(SchedulerLimits(max_prefills_per_iteration=2))
    waiting = make_queue([10] * 5)
    admitted = policy.select_prefills(waiting, 0, lambda r: True)
    assert len(admitted) == 2


def test_empty_queue():
    policy = ContinuousBatchingPolicy()
    assert policy.select_prefills(deque(), 0, lambda r: True) == []
