"""Tests for the analytic FLOP/byte cost model."""

import pytest

from repro.models.flops import BatchProfile, LayerCostModel, ModuleCost
from repro.models.spec import get_model_spec


class TestModuleCost:
    def test_addition(self):
        a = ModuleCost(flops=1.0, weight_bytes=2.0, activation_bytes=3.0, kernels=1)
        b = ModuleCost(flops=10.0, weight_bytes=20.0, activation_bytes=30.0, kernels=2)
        c = a + b
        assert c.flops == 11.0 and c.weight_bytes == 22.0 and c.activation_bytes == 33.0
        assert c.kernels == 3

    def test_scaled_preserves_kernels(self):
        cost = ModuleCost(flops=8.0, weight_bytes=4.0, activation_bytes=2.0, kernels=3)
        half = cost.scaled(0.5)
        assert half.flops == 4.0 and half.weight_bytes == 2.0
        assert half.kernels == 3

    def test_total_bytes(self):
        assert ModuleCost(weight_bytes=5.0, activation_bytes=7.0).total_bytes == 12.0


class TestBatchProfile:
    def test_token_counts(self):
        batch = BatchProfile(prefill_lengths=[100, 200], decode_contexts=[50, 60, 70])
        assert batch.prefill_tokens == 300
        assert batch.decode_tokens == 3
        assert batch.total_tokens == 303
        assert batch.num_requests == 5

    def test_factories(self):
        assert BatchProfile.prefill_only([10]).decode_tokens == 0
        assert BatchProfile.decode_only([10, 20]).prefill_tokens == 0

    def test_rejects_nonpositive_lengths(self):
        with pytest.raises(ValueError):
            BatchProfile(prefill_lengths=[0])
        with pytest.raises(ValueError):
            BatchProfile(decode_contexts=[-5])


class TestLayerCostModel:
    def setup_method(self):
        self.model = get_model_spec("llama-13b")
        self.cm = LayerCostModel(self.model)

    def test_qkv_flops_formula(self):
        tokens = 64
        cost = self.cm.qkv_cost(tokens)
        d = self.model.hidden_size
        expected = 2 * tokens * d * (d + 2 * self.model.kv_dim)
        assert cost.flops == pytest.approx(expected)

    def test_mlp_flops_gated(self):
        tokens = 16
        cost = self.cm.mlp_cost(tokens)
        expected = 2 * tokens * self.model.hidden_size * self.model.ffn_hidden_size * 3
        assert cost.flops == pytest.approx(expected)

    def test_mlp_flops_ungated_opt(self):
        opt = LayerCostModel(get_model_spec("opt-30b"))
        tokens = 16
        expected = 2 * tokens * opt.model.hidden_size * opt.model.ffn_hidden_size * 2
        assert opt.mlp_cost(tokens).flops == pytest.approx(expected)

    def test_tensor_parallel_scaling(self):
        full = self.cm.mlp_cost(32, tp_degree=1)
        half = self.cm.mlp_cost(32, tp_degree=2)
        assert half.flops == pytest.approx(full.flops / 2)
        assert half.weight_bytes == pytest.approx(full.weight_bytes / 2)

    def test_zero_tokens_zero_cost(self):
        assert self.cm.qkv_cost(0).flops == 0
        assert self.cm.mlp_cost(0).total_bytes == 0
        assert self.cm.dense_cost(BatchProfile()).flops == 0

    def test_dense_cost_depends_only_on_token_count(self):
        a = self.cm.dense_cost(BatchProfile(prefill_lengths=[128]))
        b = self.cm.dense_cost(BatchProfile(decode_contexts=[1000] * 128))
        assert a.flops == pytest.approx(b.flops)

    def test_prefill_attention_quadratic(self):
        short = self.cm.prefill_attention_cost(256)
        long = self.cm.prefill_attention_cost(512)
        assert long.flops == pytest.approx(short.flops * 4, rel=1e-6)

    def test_chunked_prefill_attention_matches_batch_cost(self):
        # The single-request and batched chunk formulas must stay in lockstep.
        single = self.cm.prefill_attention_cost(256, cached_tokens=768)
        batch = self.cm.prefill_attention_batch_cost(
            BatchProfile(prefill_lengths=[256], prefill_cached=[768])
        )
        assert single.flops == batch.flops
        assert single.activation_bytes == batch.activation_bytes

    def test_chunked_prefill_attention_cost_decomposes(self):
        # Chunk flops: new x cached cross-attention plus the chunk's own
        # causal triangle; summed over chunks this covers the full triangle.
        full = self.cm.prefill_attention_cost(1024)
        chunks = [
            self.cm.prefill_attention_cost(256, cached_tokens=cached)
            for cached in (0, 256, 512, 768)
        ]
        assert sum(c.flops for c in chunks) == pytest.approx(full.flops, rel=1e-6)
        # K/V of the cached context are re-read by every later chunk, so the
        # chunked byte total strictly exceeds the monolithic one.
        assert sum(c.activation_bytes for c in chunks) > full.activation_bytes

    def test_decode_attention_linear_in_context(self):
        a = self.cm.decode_attention_cost(500)
        b = self.cm.decode_attention_cost(1000)
        assert b.flops == pytest.approx(a.flops * 2, rel=1e-6)
        assert b.activation_bytes == pytest.approx(a.activation_bytes * 2, rel=0.01)

    def test_decode_attention_linear_in_heads(self):
        full = self.cm.decode_attention_cost(1000, num_query_heads=self.model.num_heads)
        half = self.cm.decode_attention_cost(1000, num_query_heads=self.model.num_heads // 2)
        assert half.flops == pytest.approx(full.flops / 2, rel=1e-6)

    def test_decode_attention_zero_heads(self):
        assert self.cm.decode_attention_cost(1000, num_query_heads=0).flops == 0

    def test_decode_attention_gqa_reads_fewer_kv_bytes(self):
        gqa = LayerCostModel(get_model_spec("llama-70b"))
        mha_like_bytes = gqa.decode_attention_cost(1000, num_query_heads=64).activation_bytes
        one_group = gqa.decode_attention_cost(1000, num_query_heads=8).activation_bytes
        # 64 query heads share only 8 KV heads, so the full-head read is ~8x one group.
        assert mha_like_bytes == pytest.approx(one_group * 8, rel=0.05)

    def test_batch_cost_heads_alignment_checked(self):
        with pytest.raises(ValueError):
            self.cm.decode_attention_batch_cost([100, 200], heads_per_request=[4])

    def test_batch_cost_single_kernel(self):
        cost = self.cm.decode_attention_batch_cost([100, 200, 300])
        assert cost.kernels == 1

    def test_layer_cost_positive(self):
        batch = BatchProfile(prefill_lengths=[128], decode_contexts=[256, 512])
        cost = self.cm.layer_cost(batch)
        assert cost.flops > 0 and cost.total_bytes > 0

    def test_lm_head_cost(self):
        cost = self.cm.lm_head_cost(10)
        expected = 2 * 10 * self.model.hidden_size * self.model.vocab_size
        assert cost.flops == pytest.approx(expected)
