"""Tests for transformer model specifications."""

import pytest

from repro.models.spec import MODEL_CATALOG, ModelSpec, get_model_spec, register_model_spec


def test_catalog_contains_paper_models():
    for name in ("opt-2.7b", "llama-13b", "opt-30b", "llama-70b"):
        assert name in MODEL_CATALOG


def test_get_model_spec_normalises_name():
    assert get_model_spec("LLAMA_70B") is get_model_spec("llama-70b")


def test_get_model_spec_unknown():
    with pytest.raises(KeyError):
        get_model_spec("gpt-5")


def test_llama70b_is_gqa_with_ratio_8():
    m = get_model_spec("llama-70b")
    assert m.is_gqa
    assert m.gqa_ratio == 8
    assert m.num_kv_heads == 8


def test_mha_models_have_ratio_1():
    for name in ("llama-13b", "opt-30b", "opt-2.7b"):
        m = get_model_spec(name)
        assert not m.is_gqa
        assert m.gqa_ratio == 1


def test_head_dim_consistency():
    for m in MODEL_CATALOG.values():
        assert m.head_dim * m.num_heads == m.hidden_size


def test_param_counts_are_close_to_nominal_sizes():
    # Within ~15% of the nominal "NB" name of each model.
    expectations = {"opt-2.7b": 2.7e9, "llama-13b": 13e9, "opt-30b": 30e9, "llama-70b": 70e9}
    for name, nominal in expectations.items():
        params = get_model_spec(name).total_param_count
        assert params == pytest.approx(nominal, rel=0.15)


def test_param_bytes_fp16():
    m = get_model_spec("llama-13b")
    assert m.param_bytes == m.total_param_count * 2


def test_kv_bytes_per_token_gqa_smaller_than_mha_equivalent():
    gqa = get_model_spec("llama-70b")
    # An MHA model of the same width/depth would need gqa_ratio x more KV bytes.
    mha_equiv = ModelSpec(
        name="llama-70b-mha-test",
        num_layers=gqa.num_layers,
        hidden_size=gqa.hidden_size,
        num_heads=gqa.num_heads,
        num_kv_heads=gqa.num_heads,
        ffn_hidden_size=gqa.ffn_hidden_size,
    )
    assert mha_equiv.kv_bytes_per_token() == gqa.kv_bytes_per_token() * gqa.gqa_ratio


def test_kv_bytes_per_token_scales_with_layers():
    m = get_model_spec("llama-13b")
    assert m.kv_bytes_per_token(num_layers=10) * 4 == m.kv_bytes_per_token(num_layers=40)


def test_kv_bytes_per_head_group():
    m = get_model_spec("llama-70b")
    assert m.kv_bytes_per_token_per_head_group() * m.num_kv_heads == pytest.approx(
        m.kv_bytes_per_token()
    )


def test_paper_memory_example_llama2_13b_10k_sequence():
    """The intro's example: a 10k-token sequence on a 13B-class model needs >8 GB of KV."""
    m = get_model_spec("llama-13b")
    assert m.kv_bytes_per_token() * 10_000 > 8e9


def test_spec_validation_head_divisibility():
    with pytest.raises(ValueError):
        ModelSpec(
            name="bad",
            num_layers=2,
            hidden_size=100,
            num_heads=7,
            num_kv_heads=7,
            ffn_hidden_size=400,
        )


def test_spec_validation_gqa_divisibility():
    with pytest.raises(ValueError):
        ModelSpec(
            name="bad2",
            num_layers=2,
            hidden_size=128,
            num_heads=8,
            num_kv_heads=3,
            ffn_hidden_size=512,
        )


def test_register_duplicate_model_rejected():
    with pytest.raises(ValueError):
        register_model_spec(get_model_spec("llama-13b"))
