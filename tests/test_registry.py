"""Tests for the generic plugin registry."""

import pytest

from repro.registry import Registry


@pytest.fixture
def reg():
    r = Registry("widget")
    r.register("alpha", lambda: "a", help="first widget", aliases=("a", "al"))
    r.register("beta", lambda: "b", help="second widget")
    return r


class TestRegistration:
    def test_direct_and_decorator_forms(self):
        r = Registry("thing")
        r.register("direct", object())

        @r.register("decorated", help="via decorator")
        def factory():
            return 42

        assert set(r.available()) == {"direct", "decorated"}
        assert r["decorated"] is factory
        assert factory() == 42  # decorator returns the original object

    def test_duplicate_name_rejected(self, reg):
        with pytest.raises(ValueError, match="already registered"):
            reg.register("alpha", lambda: None)

    def test_duplicate_alias_rejected(self, reg):
        with pytest.raises(ValueError, match="already registered"):
            reg.register("gamma", lambda: None, aliases=("a",))

    def test_overwrite_replaces(self, reg):
        reg.register("alpha", lambda: "a2", help="replacement", overwrite=True)
        assert reg["alpha"]() == "a2"
        assert reg.entry("alpha").help == "replacement"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty string"):
            Registry("thing").register("", object())

    def test_unregister(self, reg):
        reg.unregister("beta")
        assert "beta" not in reg
        reg.unregister("beta")  # idempotent
        # Unregistering via an alias removes the canonical entry too.
        reg.unregister("al")
        assert "alpha" not in reg and "a" not in reg


class TestLookup:
    def test_resolve_follows_aliases(self, reg):
        assert reg.resolve("a") == "alpha"
        assert reg.resolve("alpha") == "alpha"

    def test_unknown_name_lists_available(self, reg):
        with pytest.raises(ValueError, match="unknown widget 'nope'; available: alpha, beta"):
            reg.resolve("nope")

    def test_require_and_create(self, reg):
        assert reg.require("beta")() == "b"
        assert reg.create("alpha") == "a"

    def test_create_rejects_non_callable(self):
        r = Registry("spec")
        r.register("static", object())
        with pytest.raises(TypeError, match="not callable"):
            r.create("static")

    def test_mapping_get_with_default(self, reg):
        assert reg.get("nope") is None
        assert reg.get("nope", 7) == 7
        assert reg.get("al")() == "a"


class TestMappingProtocol:
    def test_iteration_excludes_aliases(self, reg):
        assert sorted(reg) == ["alpha", "beta"]
        assert len(reg) == 2
        assert set(reg.keys()) == {"alpha", "beta"}

    def test_contains_includes_aliases(self, reg):
        assert "alpha" in reg and "a" in reg
        assert "nope" not in reg

    def test_getitem_raises_keyerror(self, reg):
        with pytest.raises(KeyError):
            reg["nope"]

    def test_dict_roundtrip(self, reg):
        as_dict = dict(reg)
        assert set(as_dict) == {"alpha", "beta"}


class TestIntrospection:
    def test_describe(self, reg):
        assert reg.describe() == {"alpha": "first widget", "beta": "second widget"}

    def test_help_text_mentions_aliases(self, reg):
        text = reg.help_text()
        assert "available widgets:" in text
        assert "first widget" in text
        assert "aliases: a, al" in text


class TestBuiltinRegistries:
    """The four converted extension points still expose mapping-compatible views."""

    def test_router_registry(self):
        from repro.core.cluster_system import ROUTER_FACTORIES, ROUTERS, make_router

        assert ROUTER_FACTORIES is ROUTERS
        assert "least-kv" in sorted(ROUTER_FACTORIES)
        router = make_router("round-robin", seed=3)
        assert router.name == "round-robin"
        with pytest.raises(ValueError, match="unknown router"):
            make_router("teleport")

    def test_elasticity_registries(self):
        from repro.core.elasticity import (
            ADMISSION_FACTORIES,
            ADMISSIONS,
            AUTOSCALER_FACTORIES,
            AUTOSCALERS,
        )

        assert AUTOSCALER_FACTORIES is AUTOSCALERS
        assert ADMISSION_FACTORIES is ADMISSIONS
        assert set(AUTOSCALERS.available()) == {"target-kv", "queue-depth"}
        assert set(ADMISSIONS.available()) == {"kv-threshold", "queue-threshold"}

    def test_dataset_registry_aliases(self):
        from repro.workloads.datasets import DATASET_CATALOG, DATASETS, get_dataset_spec

        assert DATASET_CATALOG is DATASETS
        assert set(DATASETS) == {"sharegpt", "humaneval", "longbench"}
        assert get_dataset_spec("sg").name == "sharegpt"  # paper alias still works

    def test_system_registry_aliases(self):
        from repro.systems import SYSTEMS

        assert set(SYSTEMS.available()) == {"hetis", "hexgen", "splitwise", "static-tp"}
        assert SYSTEMS.resolve("static_tp") == "static-tp"
        assert SYSTEMS.resolve("static") == "static-tp"

    def test_third_party_system_reaches_api(self):
        """A registered plugin becomes a valid name across the whole API."""
        import repro
        from repro.config import SystemSpec
        from repro.systems import SYSTEMS

        @SYSTEMS.register("echo-system", help="test-only stub")
        def build_echo(cluster, model, dataset="sharegpt", limits=None, **kwargs):
            raise RuntimeError("never built in this test")

        try:
            assert "echo-system" in repro.available_systems()
            assert SystemSpec(name="echo-system").name == "echo-system"
        finally:
            SYSTEMS.unregister("echo-system")
        assert "echo-system" not in repro.available_systems()
