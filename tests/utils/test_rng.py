"""Tests for deterministic RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import make_rng, spawn_rngs


def test_make_rng_is_deterministic():
    a = make_rng(42).random(8)
    b = make_rng(42).random(8)
    assert np.allclose(a, b)


def test_make_rng_accepts_existing_generator():
    gen = np.random.default_rng(7)
    assert make_rng(gen) is gen


def test_make_rng_different_seeds_differ():
    assert not np.allclose(make_rng(1).random(8), make_rng(2).random(8))


def test_spawn_rngs_count_and_independence():
    rngs = spawn_rngs(3, 4)
    assert len(rngs) == 4
    draws = [r.random(16) for r in rngs]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not np.allclose(draws[i], draws[j])


def test_spawn_rngs_deterministic_across_calls():
    a = spawn_rngs(11, 2)
    b = spawn_rngs(11, 2)
    assert np.allclose(a[0].random(8), b[0].random(8))
    assert np.allclose(a[1].random(8), b[1].random(8))


def test_spawn_rngs_from_generator():
    gen = np.random.default_rng(5)
    rngs = spawn_rngs(gen, 2)
    assert len(rngs) == 2


def test_spawn_rngs_negative_raises():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_spawn_rngs_zero_is_empty():
    assert spawn_rngs(0, 0) == []
