"""Tests for unit constants and conversions."""

import pytest

from repro.utils import units


def test_decimal_constants():
    assert units.KB == 1_000
    assert units.MB == 1_000_000
    assert units.GB == 1_000_000_000


def test_binary_constants():
    assert units.KIB == 1024
    assert units.MIB == 1024**2
    assert units.GIB == 1024**3


def test_tera_and_giga():
    assert units.tera(1.5) == pytest.approx(1.5e12)
    assert units.giga(2.0) == pytest.approx(2.0e9)


def test_gb_bytes_roundtrip():
    assert units.gb_to_bytes(80) == 80_000_000_000
    assert units.bytes_to_gb(units.gb_to_bytes(24)) == pytest.approx(24.0)


def test_gb_to_bytes_fractional_rounds_down():
    assert units.gb_to_bytes(0.5) == 500_000_000


def test_time_conversions_roundtrip():
    assert units.seconds_to_ms(0.25) == pytest.approx(250.0)
    assert units.ms_to_seconds(units.seconds_to_ms(1.75)) == pytest.approx(1.75)


def test_gbit_link_conversion():
    # A 100 Gbit/s LAN moves 12.5 GB/s.
    assert units.gbit_per_s_to_bytes_per_s(100.0) == pytest.approx(12.5e9)
