"""Tests for the argument-validation helpers."""

import pytest

from repro.utils.validation import check_in, check_non_negative, check_positive


def test_check_positive_passes_through():
    assert check_positive("x", 3.5) == 3.5


@pytest.mark.parametrize("value", [0, -1, -0.001])
def test_check_positive_rejects(value):
    with pytest.raises(ValueError, match="x must be > 0"):
        check_positive("x", value)


def test_check_non_negative_accepts_zero():
    assert check_non_negative("y", 0) == 0


def test_check_non_negative_rejects_negative():
    with pytest.raises(ValueError):
        check_non_negative("y", -2)


def test_check_in_accepts_member():
    assert check_in("mode", "lp", ["lp", "greedy"]) == "lp"


def test_check_in_rejects_non_member():
    with pytest.raises(ValueError, match="mode must be one of"):
        check_in("mode", "exact", ["lp", "greedy"])
