"""Tests for the top-level convenience API."""

import pytest

import repro
from repro.api import build_cluster, build_system, default_hint, quick_serve, run_system
from repro.workloads.trace import generate_trace


def test_version_exposed():
    assert repro.__version__


def test_available_listings():
    assert "llama-70b" in repro.available_models()
    assert set(repro.available_systems()) == {"hetis", "hexgen", "splitwise", "static-tp"}
    assert set(repro.available_datasets()) == {"sharegpt", "humaneval", "longbench"}


def test_build_cluster_kinds():
    assert build_cluster("paper").num_devices == 12
    assert build_cluster("small").num_devices == 3
    with pytest.raises(ValueError):
        build_cluster("exascale")


def test_build_cluster_inline_blueprints():
    assert build_cluster("a100:2").num_devices == 2
    mixed = build_cluster("a100:2,t4:4")
    assert mixed.num_devices == 6
    assert set(mixed.gpu_types) == {"a100", "t4"}
    with pytest.raises(Exception):
        build_cluster("warpdrive:2")


def test_build_cluster_rejects_malformed_blueprints():
    """Malformed blueprints fail with a pointed error naming the host entry."""
    with pytest.raises(ValueError, match="no GPU count"):
        build_cluster("a100:")
    with pytest.raises(ValueError, match="count >= 1, got 0"):
        build_cluster("a100:0")
    with pytest.raises(ValueError, match="count >= 1, got -2"):
        build_cluster("a100:-2")
    with pytest.raises(ValueError, match="empty host entry"):
        build_cluster("a100:2,,t4:1")
    with pytest.raises(ValueError, match="non-integer GPU count 'two'"):
        build_cluster("a100:two")
    with pytest.raises(ValueError, match="unknown GPU type 'warpdrive'"):
        build_cluster("warpdrive:2")
    # A bare type inside a blueprint still means one GPU.
    assert build_cluster("a100:2,t4").num_devices == 3


def test_elasticity_listings():
    assert set(repro.available_autoscalers()) == {"target-kv", "queue-depth"}
    assert set(repro.available_admission_policies()) == {"kv-threshold", "queue-threshold"}
    assert {"weighted-round-robin", "weighted-least-kv", "weighted-power-of-two"} <= set(
        repro.available_routers()
    )


def test_quick_serve_single_entry_cluster_kinds_is_honoured():
    """A one-element cluster_kinds list must build that blueprint, not the
    default paper cluster."""
    result = quick_serve(
        model="llama-13b", system="static-tp", dataset="sharegpt",
        request_rate=8.0, num_requests=4, cluster_kinds=["rtx3090:2"], seed=0,
    )
    paper = quick_serve(
        model="llama-13b", system="static-tp", dataset="sharegpt",
        request_rate=8.0, num_requests=4, seed=0,
    )
    assert result.available_cache_bytes < paper.available_cache_bytes


def test_quick_serve_rejects_cluster_kinds_mismatch():
    from repro.api import build_replicated_system

    with pytest.raises(ValueError, match="cluster kinds"):
        build_replicated_system("static-tp", "llama-13b", 3, cluster_kinds=["small"])
    with pytest.raises(ValueError, match="not both"):
        build_replicated_system(
            "static-tp", "llama-13b", 1,
            clusters=[build_cluster("small")], cluster_kinds=["small"],
        )


def test_default_hint_reflects_dataset():
    lb = default_hint("longbench", "llama-13b")
    sg = default_hint("sharegpt", "llama-13b")
    assert lb.avg_prompt_tokens > sg.avg_prompt_tokens


def test_build_system_unknown_name():
    with pytest.raises(ValueError):
        build_system("orca", build_cluster("paper"), "llama-13b")


@pytest.mark.parametrize("system", ["hetis", "hexgen", "splitwise", "static-tp"])
def test_build_system_all_kinds(system):
    serving = build_system(system, build_cluster("paper"), "llama-13b")
    assert serving.available_cache_bytes() > 0
    assert serving.units


def test_quick_serve_end_to_end():
    result = quick_serve(
        model="llama-13b",
        system="hetis",
        dataset="sharegpt",
        request_rate=5.0,
        num_requests=10,
        cluster_kind="paper",
        seed=0,
    )
    assert result.summary.num_finished == 10
    assert result.normalized_latency > 0
    assert result.p95_ttft > 0
    assert result.p95_tpot >= 0


def test_quick_serve_deterministic():
    kwargs = dict(model="llama-13b", system="hexgen", dataset="humaneval",
                  request_rate=10.0, num_requests=8, seed=3)
    a = quick_serve(**kwargs)
    b = quick_serve(**kwargs)
    assert a.normalized_latency == pytest.approx(b.normalized_latency)


def test_run_system_with_custom_trace():
    cluster = build_cluster("small")
    system = build_system("static-tp", cluster, "llama-13b")
    trace = generate_trace("humaneval", 8.0, 6, seed=0)
    result = run_system(system, trace)
    assert result.summary.num_finished == 6


def test_build_replicated_system_single_replica():
    """One fixed replica still gets the ClusterServingSystem wrapper."""
    from repro.api import build_replicated_system
    from repro.core.cluster_system import ClusterServingSystem

    system = build_replicated_system("static-tp", "llama-13b", 1, cluster_kind="small")
    assert isinstance(system, ClusterServingSystem)
    assert len(system.replicas) == 1


def test_build_replicated_system_single_replica_with_cluster():
    """A prebuilt one-entry clusters list is used, not silently replaced."""
    from repro.api import build_replicated_system

    mine = build_cluster("rtx3090:2")
    system = build_replicated_system("static-tp", "llama-13b", 1, clusters=[mine])
    assert len(system.replicas) == 1
    assert system.available_cache_bytes() == system.replicas[0].available_cache_bytes()
    paper_sized = build_replicated_system("static-tp", "llama-13b", 1).available_cache_bytes()
    assert system.available_cache_bytes() < paper_sized
