"""Tests for the top-level convenience API."""

import pytest

import repro
from repro.api import build_cluster, build_system, default_hint, quick_serve, run_system
from repro.workloads.trace import generate_trace


def test_version_exposed():
    assert repro.__version__


def test_available_listings():
    assert "llama-70b" in repro.available_models()
    assert set(repro.available_systems()) == {"hetis", "hexgen", "splitwise", "static-tp"}
    assert set(repro.available_datasets()) == {"sharegpt", "humaneval", "longbench"}


def test_build_cluster_kinds():
    assert build_cluster("paper").num_devices == 12
    assert build_cluster("small").num_devices == 3
    with pytest.raises(ValueError):
        build_cluster("exascale")


def test_default_hint_reflects_dataset():
    lb = default_hint("longbench", "llama-13b")
    sg = default_hint("sharegpt", "llama-13b")
    assert lb.avg_prompt_tokens > sg.avg_prompt_tokens


def test_build_system_unknown_name():
    with pytest.raises(ValueError):
        build_system("orca", build_cluster("paper"), "llama-13b")


@pytest.mark.parametrize("system", ["hetis", "hexgen", "splitwise", "static-tp"])
def test_build_system_all_kinds(system):
    serving = build_system(system, build_cluster("paper"), "llama-13b")
    assert serving.available_cache_bytes() > 0
    assert serving.units


def test_quick_serve_end_to_end():
    result = quick_serve(
        model="llama-13b",
        system="hetis",
        dataset="sharegpt",
        request_rate=5.0,
        num_requests=10,
        cluster_kind="paper",
        seed=0,
    )
    assert result.summary.num_finished == 10
    assert result.normalized_latency > 0
    assert result.p95_ttft > 0
    assert result.p95_tpot >= 0


def test_quick_serve_deterministic():
    kwargs = dict(model="llama-13b", system="hexgen", dataset="humaneval",
                  request_rate=10.0, num_requests=8, seed=3)
    a = quick_serve(**kwargs)
    b = quick_serve(**kwargs)
    assert a.normalized_latency == pytest.approx(b.normalized_latency)


def test_run_system_with_custom_trace():
    cluster = build_cluster("small")
    system = build_system("static-tp", cluster, "llama-13b")
    trace = generate_trace("humaneval", 8.0, 6, seed=0)
    result = run_system(system, trace)
    assert result.summary.num_finished == 6
