"""Tests for the declarative deployment-spec layer (repro.config)."""

import itertools
import json

import pytest

from repro.api import build, quick_serve, run
from repro.config import (
    ClusterSpec,
    ConfigError,
    DeploymentSpec,
    ElasticitySpec,
    FailureSpec,
    RouterSpec,
    SystemSpec,
    WorkloadSpec,
    expand_grid,
    parse_grid_axis,
)
from repro.core.cluster_system import ROUTERS
from repro.core.elasticity import ADMISSIONS, AUTOSCALERS
from repro.sim.metrics import SLOSpec
from repro.systems import SYSTEMS
from repro.workloads.arrivals import RatePhase


class TestRoundTrip:
    def test_default_spec_round_trips(self):
        spec = DeploymentSpec()
        assert DeploymentSpec.from_dict(spec.to_dict()) == spec

    def test_every_registered_combination_round_trips(self):
        """from_dict(to_dict(spec)) is equality-preserving for the full
        system x router x autoscaler x admission product."""
        autoscalers = [None, *AUTOSCALERS.available()]
        admissions = [None, *ADMISSIONS.available()]
        combos = itertools.product(
            SYSTEMS.available(), ROUTERS.available(), autoscalers, admissions
        )
        for system, router, autoscaler, admission in combos:
            elasticity = None
            if autoscaler is not None or admission is not None:
                elasticity = ElasticitySpec(autoscaler=autoscaler, admission=admission)
            spec = DeploymentSpec(
                model="llama-13b",
                system=SystemSpec(name=system, prefill_chunk_tokens=256),
                cluster=ClusterSpec(kind="small", replicas=2),
                router=RouterSpec(name=router),
                elasticity=elasticity,
                slo=SLOSpec(ttft_s=2.0, tpot_s=0.2),
                workload=WorkloadSpec(
                    dataset="humaneval", request_rate=9.0, num_requests=12, seed=3
                ),
            )
            rebuilt = DeploymentSpec.from_dict(spec.to_dict())
            assert rebuilt == spec, f"{system}/{router}/{autoscaler}/{admission}"
            # And the dict itself is JSON-stable.
            assert json.loads(json.dumps(spec.to_dict())) == spec.to_dict()

    def test_phases_and_options_round_trip(self):
        spec = DeploymentSpec(
            system=SystemSpec(
                name="hetis",
                limits={"max_running_requests": 64},
                options={"theta": 0.4},
            ),
            cluster=ClusterSpec(kind="a100:1,rtx3090:2", replica_kinds=("a100:1", "rtx3090:2")),
            elasticity=ElasticitySpec(
                autoscaler="target-kv",
                autoscaler_options={"interval": 2.0, "target_utilization": 0.5},
                admission="queue-threshold",
                admission_options={"max_queue_depth": 4, "mode": "defer"},
            ),
            workload=WorkloadSpec(
                phases=(RatePhase(rate=8.0, duration=5.0), RatePhase(rate=1.0, duration=5.0)),
            ),
        )
        assert DeploymentSpec.from_dict(spec.to_dict()) == spec

    def test_json_file_round_trip(self, tmp_path):
        spec = DeploymentSpec(cluster=ClusterSpec(kind="small", replicas=2))
        path = tmp_path / "deploy.json"
        spec.save(path)
        assert DeploymentSpec.load(path) == spec

    def test_toml_file_loads(self, tmp_path):
        path = tmp_path / "deploy.toml"
        path.write_text(
            'model = "llama-13b"\n'
            "[system]\nname = \"static-tp\"\n"
            "[cluster]\nkind = \"small\"\nreplicas = 2\n"
            "[workload]\ndataset = \"sg\"\nrequest_rate = 6.0\nnum_requests = 8\n"
        )
        spec = DeploymentSpec.load(path)
        assert spec.system.name == "static-tp"
        assert spec.cluster.replicas == 2
        assert spec.workload.dataset == "sharegpt"  # alias normalised

    def test_load_rejects_unknown_extension_and_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="does not exist"):
            DeploymentSpec.load(tmp_path / "nope.json")
        bad = tmp_path / "deploy.yaml"
        bad.write_text("model: llama-13b\n")
        with pytest.raises(ConfigError, match="use .json or .toml"):
            DeploymentSpec.load(bad)

    def test_load_points_at_file_on_bad_content(self, tmp_path):
        path = tmp_path / "deploy.json"
        path.write_text('{"model": "llama-13b", "system": {"name": "orca"}}')
        with pytest.raises(ConfigError, match=r"deploy.json.*unknown system 'orca'"):
            DeploymentSpec.load(path)


class TestValidation:
    def test_unknown_names_fail_at_parse_time(self):
        with pytest.raises(ConfigError, match="system.name: unknown system 'orca'"):
            SystemSpec(name="orca")
        with pytest.raises(ConfigError, match="router.name: unknown router"):
            RouterSpec(name="teleport")
        with pytest.raises(ConfigError, match="workload.dataset: unknown dataset"):
            WorkloadSpec(dataset="mmlu")
        with pytest.raises(ConfigError, match="unknown model"):
            DeploymentSpec(model="gpt-17")
        with pytest.raises(ConfigError, match="elasticity.autoscaler: unknown autoscaler"):
            ElasticitySpec(autoscaler="magic")

    def test_system_name_normalised_through_aliases(self):
        assert SystemSpec(name="STATIC_TP").name == "static-tp"

    def test_cluster_validation(self):
        with pytest.raises(ConfigError, match="cluster.replicas"):
            ClusterSpec(replicas=0)
        with pytest.raises(ConfigError, match="unknown cluster kind"):
            ClusterSpec(kind="exascale")
        with pytest.raises(ConfigError, match="cluster.kind"):
            ClusterSpec(kind="a100:0")
        with pytest.raises(ConfigError, match=r"replica_kinds\[1\]"):
            ClusterSpec(replica_kinds=("a100:1", "warp:2"))
        with pytest.raises(ConfigError, match="2 entries"):
            ClusterSpec(replicas=3, replica_kinds=("a100:1", "rtx3090:1"))

    def test_replica_kinds_imply_replica_count(self):
        spec = ClusterSpec(replica_kinds=("a100:1", "rtx3090:2"))
        assert spec.replicas == 2

    def test_scheduler_limits_validated_eagerly(self):
        with pytest.raises(ConfigError, match="unknown field"):
            SystemSpec(limits={"max_runnign_requests": 8})
        with pytest.raises(ConfigError, match="system.limits"):
            SystemSpec(limits={"max_running_requests": -1})
        limits = SystemSpec(limits={"max_running_requests": 8}).scheduler_limits()
        assert limits.max_running_requests == 8

    def test_elasticity_options_validated_eagerly(self):
        with pytest.raises(ConfigError, match="elasticity.autoscaler_options"):
            ElasticitySpec(autoscaler="target-kv", autoscaler_options={"target_utilization": 7})
        with pytest.raises(ConfigError, match="elasticity.admission_options"):
            ElasticitySpec(admission="kv-threshold", admission_options={"bogus": 1})
        with pytest.raises(ConfigError, match="options given without"):
            ElasticitySpec(autoscaler_options={"interval": 1.0})

    def test_unknown_keys_rejected_with_expected_list(self):
        with pytest.raises(ConfigError, match="unknown key.*'requests'.*expected"):
            DeploymentSpec.from_dict({"workload": {"requests": 10}})
        with pytest.raises(ConfigError, match="unknown key"):
            DeploymentSpec.from_dict({"modle": "llama-13b"})

    def test_bad_phases_pointed_at(self):
        with pytest.raises(ConfigError, match=r"workload.phases\[1\]"):
            WorkloadSpec(phases=[{"rate": 5, "duration": 2}, {"rate": 5}])

    def test_slo_validation(self):
        with pytest.raises(ConfigError, match="ttft_s"):
            DeploymentSpec.from_dict({"slo": {"ttft_s": -1.0}})
        with pytest.raises(ConfigError, match="slo spec"):
            DeploymentSpec.from_dict({"slo": {"p99_ttft": 1.0}})


class TestOverrides:
    def test_nested_override(self):
        spec = DeploymentSpec()
        out = spec.with_overrides({"workload.request_rate": 9.0, "router.name": "least-kv"})
        assert out.workload.request_rate == 9.0
        assert out.router.name == "least-kv"
        assert spec.workload.request_rate == 5.0  # original untouched

    def test_override_creates_null_subtrees(self):
        out = DeploymentSpec().with_overrides({"slo.ttft_s": 2.0})
        assert out.slo == SLOSpec(ttft_s=2.0, tpot_s=SLOSpec.tpot_s)
        out = DeploymentSpec().with_overrides({"elasticity.autoscaler": "target-kv"})
        assert out.elasticity.autoscaler == "target-kv"

    def test_override_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown field 'rps'"):
            DeploymentSpec().with_overrides({"workload.rps": 3})

    def test_override_revalidates(self):
        with pytest.raises(ConfigError, match="unknown router"):
            DeploymentSpec().with_overrides({"router.name": "teleport"})

    def test_override_unknown_intermediate_segment_pointed_error(self):
        # A typo in a non-leaf segment must fail at parse time, naming the
        # bad segment and the full override path -- not explode later inside
        # dataclasses.replace with an unrelated TypeError.
        with pytest.raises(
            ConfigError, match=r"override path 'clusterx\.replicas'.*unknown section 'clusterx'"
        ):
            DeploymentSpec().with_overrides({"clusterx.replicas": 2})
        with pytest.raises(ConfigError, match=r"unknown section 'bogus'"):
            DeploymentSpec().with_overrides({"elasticity.bogus.x": 1})
        # Free-form option maps still accept arbitrary nesting below them.
        out = DeploymentSpec().with_overrides({"system.options.limits.max_batch": 4})
        assert out.system.options["limits"]["max_batch"] == 4

    def test_options_accept_free_form_keys(self):
        out = DeploymentSpec().with_overrides(
            {"elasticity.autoscaler": "target-kv",
             "elasticity.autoscaler_options.target_utilization": 0.4}
        )
        assert out.elasticity.autoscaler_options["target_utilization"] == 0.4


class TestGrid:
    def test_parse_grid_axis(self):
        key, values = parse_grid_axis("workload.request_rate=2,4.5,8")
        assert key == "workload.request_rate"
        assert values == [2, 4.5, 8]
        key, values = parse_grid_axis("router.name=round-robin,least-kv")
        assert values == ["round-robin", "least-kv"]
        with pytest.raises(ConfigError, match="grid axis"):
            parse_grid_axis("no-equals-sign")
        with pytest.raises(ConfigError, match="no values"):
            parse_grid_axis("workload.seed=")

    def test_expand_grid_cartesian_order(self):
        spec = DeploymentSpec()
        combos = expand_grid(
            spec,
            {"workload.request_rate": [2, 4], "workload.seed": [0, 1, 2]},
        )
        assert len(combos) == 6
        # First axis varies slowest.
        assert [o["workload.request_rate"] for o, _ in combos] == [2, 2, 2, 4, 4, 4]
        assert [o["workload.seed"] for o, _ in combos] == [0, 1, 2, 0, 1, 2]
        assert combos[3][1].workload.request_rate == 4.0
        assert combos[3][1].workload.seed == 0

    def test_expand_grid_validates_points(self):
        with pytest.raises(ConfigError, match="unknown router"):
            expand_grid(DeploymentSpec(), {"router.name": ["round-robin", "teleport"]})


class TestShimEquivalence:
    """quick_serve(**kwargs) and run(DeploymentSpec(...)) are the same run."""

    def _summaries_equal(self, a, b):
        assert a.summary.mean_normalized_latency == b.summary.mean_normalized_latency
        assert a.summary.p95_ttft == b.summary.p95_ttft
        assert a.summary.p95_tpot == b.summary.p95_tpot
        assert a.summary.throughput_tokens_per_s == b.summary.throughput_tokens_per_s
        assert a.summary.num_finished == b.summary.num_finished
        ra = sorted(a.metrics.records, key=lambda r: r.request_id)
        rb = sorted(b.metrics.records, key=lambda r: r.request_id)
        assert [r.finish_time for r in ra] == [r.finish_time for r in rb]

    def test_single_replica(self):
        kwargs = dict(
            model="llama-13b", system="static-tp", dataset="sharegpt",
            request_rate=8.0, num_requests=10, cluster_kind="small", seed=0,
        )
        legacy = quick_serve(**kwargs)
        spec = DeploymentSpec(
            model="llama-13b",
            system=SystemSpec(name="static-tp"),
            cluster=ClusterSpec(kind="small"),
            workload=WorkloadSpec(dataset="sharegpt", request_rate=8.0, num_requests=10, seed=0),
        )
        self._summaries_equal(legacy, run(spec))

    def test_replicated_elastic(self):
        legacy = quick_serve(
            model="llama-13b", system="static-tp", dataset="sharegpt",
            request_rate=16.0, num_requests=12, cluster_kind="small", seed=1,
            num_replicas=2, router="least-kv", admission="queue-threshold",
        )
        spec = DeploymentSpec(
            model="llama-13b",
            system=SystemSpec(name="static-tp"),
            cluster=ClusterSpec(kind="small", replicas=2),
            router=RouterSpec(name="least-kv"),
            elasticity=ElasticitySpec(admission="queue-threshold"),
            workload=WorkloadSpec(dataset="sharegpt", request_rate=16.0, num_requests=12, seed=1),
        )
        self._summaries_equal(legacy, run(spec))

    def test_heterogeneous_router(self):
        legacy = quick_serve(
            model="llama-13b", system="static-tp", dataset="humaneval",
            request_rate=20.0, num_requests=12, seed=0,
            cluster_kinds=["a100:1", "rtx3090:2"], router="weighted-least-kv",
        )
        spec = DeploymentSpec(
            model="llama-13b",
            system=SystemSpec(name="static-tp"),
            cluster=ClusterSpec(replica_kinds=("a100:1", "rtx3090:2")),
            router=RouterSpec(name="weighted-least-kv"),
            workload=WorkloadSpec(dataset="humaneval", request_rate=20.0, num_requests=12, seed=0),
        )
        self._summaries_equal(legacy, run(spec))


class TestSLOPlumbing:
    def test_quick_serve_slo_changes_attainment(self):
        kwargs = dict(
            model="llama-13b", system="static-tp", dataset="sharegpt",
            request_rate=8.0, num_requests=8, cluster_kind="small", seed=0,
        )
        loose = quick_serve(**kwargs)
        tight = quick_serve(slo=SLOSpec(ttft_s=1e-9, tpot_s=1e-9), **kwargs)
        assert loose.summary.slo_attainment == 1.0
        assert tight.summary.slo_attainment == 0.0
        assert tight.summary.goodput_rps == 0.0
        # SLO scoring must not perturb the simulation itself.
        assert tight.summary.mean_normalized_latency == loose.summary.mean_normalized_latency

    def test_spec_slo_reaches_metrics(self):
        spec = DeploymentSpec(
            model="llama-13b",
            system=SystemSpec(name="static-tp"),
            cluster=ClusterSpec(kind="small"),
            slo=SLOSpec(ttft_s=1e-9, tpot_s=1e-9),
            workload=WorkloadSpec(request_rate=8.0, num_requests=6, seed=0),
        )
        result = run(spec)
        assert result.summary.slo_attainment == 0.0

    def test_prepared_run_exposes_parts(self):
        spec = DeploymentSpec(
            model="llama-13b",
            system=SystemSpec(name="static-tp"),
            cluster=ClusterSpec(kind="small"),
            workload=WorkloadSpec(request_rate=8.0, num_requests=4, seed=0),
        )
        prepared = build(spec)
        assert len(prepared.trace) == 4
        assert "static-tp" in prepared.describe()
        result = prepared.run()
        assert result.summary.num_finished == 4


class TestReviewHardening:
    def test_slo_non_numeric_is_config_error(self):
        with pytest.raises(ConfigError, match="slo.ttft_s must be a number"):
            DeploymentSpec.from_dict({"slo": {"ttft_s": "fast"}})
        with pytest.raises(ConfigError, match="slo.tpot_s must be a number"):
            DeploymentSpec.from_dict({"slo": {"tpot_s": None, "ttft_s": 1.0}})

    def test_empty_replica_kinds_list_rejected_not_ignored(self):
        with pytest.raises(ConfigError, match="replica_kinds must not be empty"):
            DeploymentSpec.from_dict({"cluster": {"replica_kinds": []}})

    def test_empty_phases_list_rejected_not_ignored(self):
        with pytest.raises(ConfigError, match="phases must not be empty"):
            DeploymentSpec.from_dict({"workload": {"phases": []}})

    def test_grid_axis_json_list_preserves_commas(self):
        key, values = parse_grid_axis('cluster.kind=["a100:2,t4:4","small"]')
        assert key == "cluster.kind"
        assert values == ["a100:2,t4:4", "small"]

    def test_build_shims_do_not_generate_traces(self, monkeypatch):
        import repro.api as api

        def boom(*args, **kwargs):
            raise AssertionError("trace generated during system construction")

        monkeypatch.setattr(api, "generate_trace", boom)
        system = api.build_replicated_system("static-tp", "llama-13b", 2, cluster_kind="small")
        assert len(system.replicas) == 2


class TestMetricsSpec:
    def test_defaults_round_trip(self):
        from repro.config import MetricsSpec

        spec = DeploymentSpec.from_dict({"metrics": {"mode": "bounded"}})
        assert isinstance(spec.metrics, MetricsSpec)
        assert spec.metrics.bounded
        assert DeploymentSpec.from_dict(spec.to_dict()) == spec
        # Absent section stays None (exact mode, legacy-identical).
        assert DeploymentSpec.from_dict({}).metrics is None

    def test_validation(self):
        from repro.config import MetricsSpec

        with pytest.raises(ConfigError, match="metrics.mode"):
            MetricsSpec(mode="approximate")
        with pytest.raises(ConfigError, match="quantile_epsilon"):
            MetricsSpec(quantile_epsilon=0.5)
        with pytest.raises(ConfigError, match="max_recorder_samples_per_key"):
            MetricsSpec(max_recorder_samples_per_key=1)
        with pytest.raises(ConfigError, match="unknown key"):
            DeploymentSpec.from_dict({"metrics": {"md": "exact"}})

    def test_override_path(self):
        spec = DeploymentSpec.from_dict({}).with_overrides({"metrics.mode": "bounded"})
        assert spec.metrics is not None and spec.metrics.bounded
        with pytest.raises(ConfigError, match="unknown field"):
            DeploymentSpec.from_dict({}).with_overrides({"metrics.bogus": 1})

    def test_builders(self):
        from repro.config import MetricsSpec

        collector = MetricsSpec(mode="bounded", quantile_epsilon=0.02).build_collector()
        assert collector.bounded_memory and collector.quantile_epsilon == 0.02
        recorder = MetricsSpec(max_recorder_samples_per_key=16).build_recorder()
        assert recorder.max_samples_per_key == 16

    def test_workload_streaming_round_trip(self):
        spec = DeploymentSpec.from_dict({"workload": {"streaming": True, "num_requests": 8}})
        assert spec.workload.streaming
        assert DeploymentSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ConfigError, match="num_requests > 0"):
            DeploymentSpec.from_dict({"workload": {"streaming": True, "num_requests": 0}})

    def test_streaming_bounded_run_end_to_end(self):
        spec = DeploymentSpec.from_dict(
            {
                "system": {"name": "static-tp"},
                "cluster": {"kind": "small"},
                "workload": {
                    "dataset": "sharegpt",
                    "request_rate": 8.0,
                    "num_requests": 12,
                    "streaming": True,
                },
                "metrics": {"mode": "bounded", "max_recorder_samples_per_key": 64},
            }
        )
        result = run(spec)
        assert result.summary.num_finished == 12
        assert result.metrics.bounded_memory
        assert result.metrics.records == []
        assert result.recorder.max_samples_per_key == 64
        assert not result.truncated


class TestFailureSpec:
    def test_round_trip(self):
        fs = FailureSpec(
            events=[[5.0, 0], {"time": 12.0, "replica": 2}],
            rate=0.05, num_failures=3, seed=7, recovery_time=60.0, check_interval=0.5,
        )
        assert fs.events == ((5.0, 0), (12.0, 2))
        rebuilt = FailureSpec.from_dict(fs.to_dict())
        assert rebuilt == fs
        spec = DeploymentSpec(
            cluster=ClusterSpec(kind="small", replicas=3), failures=fs
        )
        assert DeploymentSpec.from_dict(spec.to_dict()) == spec
        assert spec.is_replicated

    def test_enabled(self):
        assert not FailureSpec().enabled
        assert FailureSpec(events=[[1.0, 0]]).enabled
        assert FailureSpec(rate=0.1, num_failures=2).enabled

    def test_validation(self):
        with pytest.raises(ConfigError, match="time"):
            FailureSpec(events=[[-1.0, 0]])
        with pytest.raises(ConfigError, match="replica"):
            FailureSpec(events=[[1.0, -2]])
        with pytest.raises(ConfigError, match="pairs"):
            FailureSpec(events=[[1.0]])
        with pytest.raises(ConfigError, match="rate"):
            FailureSpec(rate=-0.1)
        with pytest.raises(ConfigError, match="num_failures"):
            FailureSpec(rate=0.5)
        with pytest.raises(ConfigError, match="recovery_time"):
            FailureSpec(recovery_time=-1.0)
        with pytest.raises(ConfigError, match="check_interval"):
            FailureSpec(check_interval=0.0)
        with pytest.raises(ConfigError, match="unknown"):
            FailureSpec.from_dict({"rates": 0.5})

    def test_build_schedule_deterministic_and_sorted(self):
        fs = FailureSpec(events=[[30.0, 1]], rate=0.1, num_failures=4, seed=3)
        a = fs.build_schedule(4)
        b = fs.build_schedule(4)
        assert a == b
        assert a == sorted(a)
        assert len(a) == 5
        assert all(0 <= idx < 4 for _, idx in a)
        # A different seed produces a different generated schedule.
        assert FailureSpec(rate=0.1, num_failures=4, seed=4).build_schedule(4) != \
            FailureSpec(rate=0.1, num_failures=4, seed=3).build_schedule(4)

    def test_build_schedule_rejects_out_of_range_replica(self):
        fs = FailureSpec(events=[[1.0, 5]])
        with pytest.raises(ConfigError, match="only 2 replicas"):
            fs.build_schedule(2)

    def test_override_paths(self):
        spec = DeploymentSpec(cluster=ClusterSpec(kind="small", replicas=2))
        ov = spec.with_overrides({"failures.rate": 0.2, "failures.num_failures": 1})
        assert ov.failures is not None and ov.failures.rate == 0.2
        with pytest.raises(ConfigError, match="unknown field"):
            spec.with_overrides({"failures.cadence": 1.0})

    def test_migration_round_trip_and_override(self):
        spec = DeploymentSpec(
            cluster=ClusterSpec(kind="small", replicas=2),
            elasticity=ElasticitySpec(migration=True, migration_bandwidth_gbps=40.0),
        )
        assert DeploymentSpec.from_dict(spec.to_dict()) == spec
        assert spec.is_replicated and spec.elasticity.enabled
        flipped = spec.with_overrides({"elasticity.migration": False})
        assert not flipped.elasticity.migration
        with pytest.raises(ConfigError, match="migration_bandwidth_gbps"):
            ElasticitySpec(migration_bandwidth_gbps=0.0)


class TestExecutionSpec:
    """The [execution] fault-tolerance block: parsing, validation, isolation."""

    def test_defaults_and_round_trip(self):
        from repro.config import ExecutionSpec

        spec = ExecutionSpec()
        assert spec.task_timeout is None and spec.max_retries == 0
        assert spec.backoff_base == 0.5 and spec.journal is None
        full = ExecutionSpec(
            task_timeout=30, max_retries=2, backoff_base=1, journal="run.journal"
        )
        assert ExecutionSpec.from_dict(full.to_dict()) == full
        # numeric fields coerce to float so TOML ints and floats compare equal
        assert isinstance(full.task_timeout, float)
        assert isinstance(full.backoff_base, float)

    def test_validation_rejects_bad_values(self):
        from repro.config import ExecutionSpec

        with pytest.raises(ConfigError, match="task_timeout"):
            ExecutionSpec(task_timeout=0)
        with pytest.raises(ConfigError, match="max_retries"):
            ExecutionSpec(max_retries=-1)
        with pytest.raises(ConfigError, match="backoff_base"):
            ExecutionSpec(backoff_base=-0.1)
        with pytest.raises(ConfigError, match="journal"):
            ExecutionSpec(journal="")
        with pytest.raises(ConfigError, match="unknown"):
            ExecutionSpec.from_dict({"retries": 3})

    def test_extract_execution_pops_in_place(self):
        from repro.config import ExecutionSpec, extract_execution

        data = {"model": "llama-13b", "execution": {"max_retries": 1}}
        spec = extract_execution(data)
        assert spec == ExecutionSpec(max_retries=1)
        assert "execution" not in data
        assert extract_execution({"model": "llama-13b"}) is None
        with pytest.raises(ConfigError, match="execution must be a mapping"):
            extract_execution({"execution": [1, 2]})

    def test_execution_never_perturbs_spec_hashes(self, tmp_path):
        """Execution knobs change how points run, never what they compute."""
        from repro.config import extract_execution, load_config_mapping
        from repro.experiments.runner import ResultCache

        path = tmp_path / "deploy.json"
        base = {"model": "llama-13b", "cluster": {"kind": "small"}}
        path.write_text(json.dumps(base))
        plain = DeploymentSpec.from_dict(load_config_mapping(path))
        path.write_text(json.dumps({**base, "execution": {"task_timeout": 5.0}}))
        data = load_config_mapping(path)
        extract_execution(data)
        with_exec = DeploymentSpec.from_dict(data)
        assert plain == with_exec
        assert ResultCache.key("deployment", plain.to_dict()) == ResultCache.key(
            "deployment", with_exec.to_dict()
        )

    def test_runner_kwargs_match_sweeprunner_signature(self):
        from repro.config import ExecutionSpec
        from repro.experiments.runner import SweepRunner

        spec = ExecutionSpec(task_timeout=10.0, max_retries=3, backoff_base=0.1)
        runner = SweepRunner(**spec.runner_kwargs())
        assert runner.task_timeout == 10.0
        assert runner.max_retries == 3
        assert runner.backoff_base == 0.1
        assert runner.journal is None
