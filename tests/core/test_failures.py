"""Tests for failure injection and KV-aware live migration on replicated fleets."""

import pytest

from repro.api import build_replicated_system, quick_serve, run_system
from repro.config import FailureSpec
from repro.core.cluster_system import ClusterServingSystem, replica_cost_per_hour
from repro.sim.metrics import SLOSpec
from repro.workloads.trace import generate_trace

pytestmark = pytest.mark.slow


def churn_run(migration, recovery_time=120.0, rate=14.0, n=200, replicas=4, seed=3):
    return quick_serve(
        model="llama-13b",
        system="static-tp",
        cluster_kind="rtx3090:2",
        num_replicas=replicas,
        request_rate=rate,
        num_requests=n,
        seed=seed,
        slo=SLOSpec(ttft_s=2.0, tpot_s=0.2),
        failures=FailureSpec(events=[[5.0, 0]], recovery_time=recovery_time),
        migration=migration,
    )


class TestFailureInjection:
    def test_schedule_validates_replica_bounds(self):
        system = build_replicated_system("static-tp", "llama-13b", 2, cluster_kind="small")
        with pytest.raises(ValueError, match="replica"):
            ClusterServingSystem(
                system.replicas, router="round-robin", failure_schedule=[(1.0, 5)]
            )

    def test_failure_fires_and_is_recorded(self):
        system = build_replicated_system(
            "static-tp", "llama-13b", 2, cluster_kind="small",
            failures=FailureSpec(events=[[1.0, 0]], recovery_time=1e9),
        )
        trace = generate_trace("sharegpt", 8.0, 32, seed=0)
        result = run_system(system, trace, max_simulated_time=60.0)
        assert system.failure_events == [(1.0, 0)]
        assert not system.active[0]
        times = [t for t, _ in result.recorder.raw("failures", "cluster")]
        assert times and times[0] >= 1.0

    def test_failed_replica_is_a_real_outage(self):
        """While down, a failed replica makes no progress on its queue."""
        system = build_replicated_system(
            "static-tp", "llama-13b", 2, cluster_kind="small",
            failures=FailureSpec(events=[[1.0, 0]], recovery_time=1e9),
        )
        for unit in system.replicas[0].units:
            assert unit.paused_until == 0.0
        trace = generate_trace("sharegpt", 10.0, 24, seed=0)
        run_system(system, trace, max_simulated_time=30.0)
        for unit in system.replicas[0].units:
            assert unit.paused_until > 1e8

    def test_recovered_replica_rejoins_without_autoscaler(self):
        system = build_replicated_system(
            "static-tp", "llama-13b", 2, cluster_kind="small",
            failures=FailureSpec(events=[[1.0, 0]], recovery_time=3.0),
        )
        trace = generate_trace("sharegpt", 8.0, 48, seed=0)
        result = run_system(system, trace, max_simulated_time=600.0)
        assert system.active == [True, True]
        assert result.summary.num_finished == 48

    def test_initial_activation_recorded_at_t0(self):
        """The activation series starts at t=0, not at the first control tick."""
        system = build_replicated_system(
            "static-tp", "llama-13b", 2, cluster_kind="small",
            failures=FailureSpec(events=[[2.0, 0]], recovery_time=1e9),
        )
        trace = generate_trace("sharegpt", 8.0, 16, seed=0)
        result = run_system(system, trace, max_simulated_time=30.0)
        series = result.recorder.raw("active_replicas", "cluster")
        assert series[0] == (0.0, 2.0)
        assert system.scale_events[0] == (0.0, 2)

    def test_route_falls_back_to_least_loaded_drained_replica(self):
        """With every replica down, arrivals route to the least-loaded one."""
        system = build_replicated_system(
            "static-tp", "llama-13b", 2, cluster_kind="small", router="least-kv",
            failures=FailureSpec(
                events=[[0.5, 0], [0.5, 1]], recovery_time=1e9, check_interval=0.25
            ),
        )
        trace = generate_trace("sharegpt", 10.0, 32, seed=0)
        result = run_system(system, trace, max_simulated_time=10.0)
        assert system.num_drained_routes > 0
        routed = result.recorder.raw("drained_routes", "cluster")
        assert len(routed) == system.num_drained_routes
        assert all(v in (0.0, 1.0) for _, v in routed)


class TestLiveMigration:
    def test_migration_moves_work_and_counts_bytes(self):
        result = churn_run(migration=True, n=120)
        # The failed replica held queued work at t=5; with migration on it
        # must have moved, with a positive priced byte volume.
        assert result.summary.num_finished == 120

    def test_migration_counters_and_series(self):
        system = build_replicated_system(
            "static-tp", "llama-13b", 2, cluster_kind="small",
            failures=FailureSpec(events=[[1.0, 0]], recovery_time=1e9),
            migration=True,
        )
        trace = generate_trace("sharegpt", 12.0, 48, seed=0)
        result = run_system(system, trace, max_simulated_time=120.0)
        assert system.migration_enabled
        assert system.num_migrated_requests > 0
        assert system.migrated_bytes > 0
        moved = result.recorder.raw("migrations", "cluster")
        assert sum(v for _, v in moved) == system.num_migrated_requests
        assert result.summary.num_finished == 48

    def test_migration_beats_no_migration_under_churn(self):
        """The churn experiment's acceptance property, in miniature."""
        on = churn_run(migration=True)
        off = churn_run(migration=False)
        assert on.summary.num_finished == off.summary.num_finished
        assert on.summary.slo_attainment > off.summary.slo_attainment
        assert on.summary.goodput_rps > off.summary.goodput_rps

    def test_churn_runs_are_bit_identical(self):
        a = churn_run(migration=True, n=100)
        b = churn_run(migration=True, n=100)
        assert a.summary == b.summary
        assert [r.finish_time for r in a.metrics.records] == [
            r.finish_time for r in b.metrics.records
        ]

    def test_migration_off_by_default_is_inert(self):
        system = build_replicated_system("static-tp", "llama-13b", 2, cluster_kind="small")
        assert not system.migration_enabled
        assert system.num_migrated_requests == 0


class TestReplicaCosts:
    def test_replica_cost_sums_catalog_prices(self):
        system = build_replicated_system(
            "static-tp", "llama-13b", 2,
            cluster_kinds=["rtx3090:2", "a100:2"],
        )
        states = system.replica_states(0.0)
        assert states[0].cost_per_hour == pytest.approx(2 * 0.85)
        assert states[1].cost_per_hour == pytest.approx(2 * 3.00)
        for replica, state in zip(system.replicas, states):
            assert replica_cost_per_hour(replica) == pytest.approx(state.cost_per_hour)
