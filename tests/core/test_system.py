"""Tests for the Hetis serving system and its builder."""

import pytest

from repro.core.system import HetisSystem, build_hetis_system
from repro.core.parallelizer import WorkloadHint
from repro.hardware.cluster import paper_cluster, simple_cluster
from repro.models.spec import get_model_spec
from repro.sim.engine import Engine
from repro.workloads.trace import generate_trace


@pytest.fixture(scope="module")
def small_hetis():
    cluster = simple_cluster("a100", "rtx3090", n_high=1, n_low=2)
    return build_hetis_system(cluster, get_model_spec("llama-13b"), hint=WorkloadHint())


def test_builder_produces_instances(small_hetis):
    assert small_hetis.name == "hetis"
    assert len(small_hetis.units) >= 1
    assert small_hetis.plan is not None
    assert "hetis" in small_hetis.describe()


def test_empty_system_rejected():
    with pytest.raises(ValueError):
        HetisSystem([])


def test_route_least_loaded():
    cluster = paper_cluster()
    system = build_hetis_system(cluster, get_model_spec("llama-13b"), hint=WorkloadHint())
    if len(system.units) < 2:
        pytest.skip("planner chose a single instance for this model")
    from repro.sim.request import Request

    first = system.route(Request(request_id=0, arrival_time=0, prompt_tokens=10, output_tokens=1), 0.0)
    first.enqueue(Request(request_id=1, arrival_time=0, prompt_tokens=10, output_tokens=1), 0.0)
    second = system.route(Request(request_id=2, arrival_time=0, prompt_tokens=10, output_tokens=1), 0.0)
    assert second is not first


def test_end_to_end_run_records_heads_and_cache(small_hetis):
    trace = generate_trace("sharegpt", 4.0, 12, seed=0)
    result = Engine(small_hetis).run(trace)
    assert result.summary.num_finished == 12
    assert "heads" in result.recorder.series_names()
    assert "cache_usage" in result.recorder.series_names()
    assert result.available_cache_bytes > 0


def test_total_redispatch_counter(small_hetis):
    assert small_hetis.total_redispatches >= 0
