"""Tests for the Hetis serving instance unit."""

import pytest

from repro.core.hetis_unit import HetisInstanceUnit
from repro.hardware.cluster import ClusterBuilder, simple_cluster
from repro.models.spec import get_model_spec
from repro.parallel.config import InstanceParallelConfig, StageConfig
from repro.sim.request import Request
from repro.sim.scheduler import SchedulerLimits


def make_unit(model_name="llama-13b", n_workers=2, **kwargs):
    cluster = simple_cluster("a100", "rtx3090", n_high=1, n_low=max(1, n_workers))
    model = get_model_spec(model_name)
    a100 = cluster.devices_of_type("a100")
    workers = cluster.devices_of_type("rtx3090")[:n_workers]
    config = InstanceParallelConfig(
        stages=[StageConfig(devices=a100, num_layers=model.num_layers)],
        attention_workers=workers,
    )
    return HetisInstanceUnit("hetis-test", config, model, cluster, **kwargs), model, cluster


def make_request(req_id=0, prompt=300, output=4, arrival=0.0):
    return Request(request_id=req_id, arrival_time=arrival, prompt_tokens=prompt, output_tokens=output)


def drive(unit, now=0.0, max_iters=200):
    """Run the unit until it drains or the iteration budget is exhausted."""
    finished = []
    for _ in range(max_iters):
        it = unit.next_iteration(now)
        if it is None:
            if not unit.has_work():
                break
            now += 1e-3
            continue
        now += it.duration
        finished += unit.complete_iteration(it, now).finished
    return finished, now


class TestConstruction:
    def test_device_models_fitted_for_all_targets(self):
        unit, model, _ = make_unit()
        assert len(unit.dispatcher.targets) == 3  # primary + 2 workers
        assert unit.dispatcher.targets[0].is_primary
        for target in unit.dispatcher.targets[1:]:
            assert target.device_model.is_remote

    def test_kv_capacity_counts_attention_workers(self):
        with_workers, _, _ = make_unit(n_workers=2)
        without, _, _ = make_unit(n_workers=1)
        assert with_workers.available_kv_bytes() > without.available_kv_bytes()

    def test_profiling_error_perturbs_models(self):
        clean, _, _ = make_unit(seed=1)
        noisy, _, _ = make_unit(profiling_error=0.2, seed=1)
        a_clean = clean.dispatcher.targets[0].device_model.compute.a
        a_noisy = noisy.dispatcher.targets[0].device_model.compute.a
        assert a_clean != pytest.approx(a_noisy)


class TestServingLoop:
    def test_single_request_completes_with_correct_tokens(self):
        unit, _, _ = make_unit()
        req = make_request(output=5)
        unit.enqueue(req, 0.0)
        finished, _ = drive(unit)
        assert finished == [req]
        assert req.generated_tokens == 5
        assert req.ttft is not None and req.tpot is not None
        # Cache fully released.
        assert all(v == 0.0 for v in unit.kv_utilization().values())
        assert unit.head_counts()["hetis-test/primary"] == 0.0

    def test_many_requests_all_complete(self):
        unit, _, _ = make_unit()
        reqs = [make_request(i, prompt=200 + 50 * i, output=3) for i in range(12)]
        for r in reqs:
            unit.enqueue(r, 0.0)
        finished, _ = drive(unit)
        assert len(finished) == 12

    def test_decode_iterations_report_module_times(self):
        unit, _, _ = make_unit()
        unit.enqueue(make_request(output=4), 0.0)
        it = unit.next_iteration(0.0)
        unit.complete_iteration(it, it.duration)
        decode_it = unit.next_iteration(it.duration)
        assert decode_it.module_times["mlp"] > 0
        assert decode_it.module_times["attention"] > 0

    def test_head_counts_track_resident_requests(self):
        unit, model, _ = make_unit()
        unit.enqueue(make_request(output=6), 0.0)
        it = unit.next_iteration(0.0)
        unit.complete_iteration(it, it.duration)
        counts = unit.head_counts()
        assert sum(counts.values()) == model.num_heads

    def test_splits_respect_head_integrity(self):
        unit, model, _ = make_unit()
        for i in range(6):
            unit.enqueue(make_request(i, prompt=500, output=3), 0.0)
        unit.next_iteration(0.0)
        for split in unit._splits.values():
            assert sum(split.allocation.values()) == model.num_heads


class TestMemoryPressure:
    def make_tiny_unit(self, enable_redispatch=True):
        """A single P100 primary + one P100 worker serving OPT-2.7B: tight memory."""
        cluster = ClusterBuilder().add_host("p100", 2).build()
        model = get_model_spec("opt-2.7b")
        config = InstanceParallelConfig(
            stages=[StageConfig(devices=cluster.devices[:1], num_layers=model.num_layers)],
            attention_workers=cluster.devices[1:],
        )
        return (
            HetisInstanceUnit(
                "tiny",
                config,
                model,
                cluster,
                limits=SchedulerLimits(max_running_requests=64),
                enable_redispatch=enable_redispatch,
            ),
            model,
        )

    def test_no_deadlock_under_pressure_with_redispatch(self):
        unit, _ = self.make_tiny_unit(enable_redispatch=True)
        reqs = [make_request(i, prompt=1500, output=200) for i in range(6)]
        for r in reqs:
            unit.enqueue(r, 0.0)
        finished, _ = drive(unit, max_iters=800)
        assert len(finished) + unit.num_waiting + unit.num_running + len(unit.dropped) == 6
        assert len(finished) >= 1

    def test_no_deadlock_under_pressure_with_lifo(self):
        unit, _ = self.make_tiny_unit(enable_redispatch=False)
        reqs = [make_request(i, prompt=1500, output=200) for i in range(6)]
        for r in reqs:
            unit.enqueue(r, 0.0)
        finished, _ = drive(unit, max_iters=800)
        assert len(finished) >= 1

    def test_oversized_request_dropped_not_deadlocked(self):
        unit, model = self.make_tiny_unit()
        huge = make_request(0, prompt=500_000, output=10)
        unit.enqueue(huge, 0.0)
        it = unit.next_iteration(0.0)
        assert it is None
        assert huge in unit.dropped
