"""Tests for the online Dispatcher."""

import pytest

from repro.core.dispatcher import Dispatcher, DispatchTarget
from repro.kvcache.head_block_manager import HeadwiseBlockManager
from repro.models.spec import get_model_spec
from repro.perf.attention_model import AttentionTimeModel, DeviceAttentionModel, TransferTimeModel


@pytest.fixture
def llama70b():
    return get_model_spec("llama-70b")


def make_targets(model, primary_capacity=40e9, worker_capacity=10e9, n_workers=2,
                 primary_speed=1.0, worker_speed=3.0, transfer_beta=1e-3):
    """A fast primary plus slower remote workers with per-head transfer cost."""
    targets = [
        DispatchTarget(
            target_id=-1,
            name="primary",
            device_model=DeviceAttentionModel(
                -1, "primary", AttentionTimeModel(a=primary_speed * 1e-5, b=primary_speed * 2e-9, c=1e-4)
            ),
            manager=HeadwiseBlockManager(primary_capacity, model),
            is_primary=True,
        )
    ]
    for i in range(n_workers):
        targets.append(
            DispatchTarget(
                target_id=i,
                name=f"worker-{i}",
                device_model=DeviceAttentionModel(
                    i,
                    f"worker-{i}",
                    AttentionTimeModel(a=worker_speed * 1e-5, b=worker_speed * 2e-9, c=1e-4),
                    TransferTimeModel(gamma=8e-11, beta=transfer_beta),
                    is_remote=True,
                ),
                manager=HeadwiseBlockManager(worker_capacity, model),
            )
        )
    return targets


class TestConstruction:
    def test_requires_exactly_one_primary(self, llama70b):
        targets = make_targets(llama70b)
        targets[0] = DispatchTarget(
            target_id=-1,
            name="primary",
            device_model=targets[0].device_model,
            manager=targets[0].manager,
            is_primary=False,
        )
        with pytest.raises(ValueError, match="is_primary"):
            Dispatcher(llama70b, targets)

    def test_invalid_solver(self, llama70b):
        with pytest.raises(ValueError):
            Dispatcher(llama70b, make_targets(llama70b), solver="simplex")


class TestDispatchNew:
    def test_empty_batch(self, llama70b):
        decision = Dispatcher(llama70b, make_targets(llama70b)).dispatch_new([])
        assert decision.num_requests == 0

    def test_light_load_stays_on_primary(self, llama70b):
        """The delayed-offload behaviour behind Fig. 14: one small request stays local."""
        dispatcher = Dispatcher(llama70b, make_targets(llama70b))
        decision = dispatcher.dispatch_new([(1, 300)])
        assert decision.feasible
        split = decision.splits[1]
        assert split.heads_on(-1) == llama70b.num_heads

    def test_splits_respect_integrity_and_group_size(self, llama70b):
        dispatcher = Dispatcher(llama70b, make_targets(llama70b))
        decision = dispatcher.dispatch_new([(j, 1500) for j in range(8)])
        assert decision.feasible
        for split in decision.splits.values():
            total = sum(split.allocation.values())
            assert total == llama70b.num_heads
            assert all(h % llama70b.gqa_ratio == 0 for h in split.allocation.values())

    def test_offloads_when_primary_capacity_exhausted(self, llama70b):
        targets = make_targets(llama70b, primary_capacity=2e8, worker_capacity=40e9)
        dispatcher = Dispatcher(llama70b, targets)
        decision = dispatcher.dispatch_new([(j, 4000) for j in range(6)])
        assert decision.feasible
        offloaded = sum(
            split.heads_on(i) for split in decision.splits.values() for i in (0, 1)
        )
        assert offloaded > 0

    def test_infeasible_when_cluster_full(self, llama70b):
        targets = make_targets(llama70b, primary_capacity=1e7, worker_capacity=1e7)
        dispatcher = Dispatcher(llama70b, targets)
        decision = dispatcher.dispatch_new([(1, 100_000)])
        assert not decision.feasible

    def test_greedy_solver_also_works(self, llama70b):
        dispatcher = Dispatcher(llama70b, make_targets(llama70b), solver="greedy")
        decision = dispatcher.dispatch_new([(j, 1000) for j in range(4)])
        assert decision.feasible
        assert decision.method in ("greedy", "local")

    def test_heavy_load_uses_workers(self, llama70b):
        """Under heavy load the min-max objective pushes heads to the workers."""
        targets = make_targets(llama70b, transfer_beta=1e-5)
        dispatcher = Dispatcher(llama70b, targets, local_preference=0.0)
        # Pre-load the primary with lots of resident work.
        targets[0].manager.allocate(999, llama70b.num_heads, 60_000)
        decision = dispatcher.dispatch_new([(j, 3000) for j in range(6)])
        assert decision.feasible
        worker_heads = sum(split.heads_on(0) + split.heads_on(1) for split in decision.splits.values())
        assert worker_heads > 0


class TestStateAndObjectives:
    def test_current_objective_tracks_manager_state(self, llama70b):
        targets = make_targets(llama70b)
        dispatcher = Dispatcher(llama70b, targets)
        empty = dispatcher.current_objective()
        targets[0].manager.allocate(1, llama70b.num_heads, 5000)
        assert dispatcher.current_objective() > empty

    def test_ideal_objective_no_requests_is_zero(self, llama70b):
        assert Dispatcher(llama70b, make_targets(llama70b)).ideal_objective([]) == 0.0

    def test_ideal_objective_positive(self, llama70b):
        dispatcher = Dispatcher(llama70b, make_targets(llama70b))
        assert dispatcher.ideal_objective([(1, 2000), (2, 3000)]) > 0.0

    def test_target_lookup(self, llama70b):
        dispatcher = Dispatcher(llama70b, make_targets(llama70b))
        assert dispatcher.target_by_id(-1).is_primary
        with pytest.raises(KeyError):
            dispatcher.target_by_id(42)

    def test_free_token_heads_accounting(self, llama70b):
        target = make_targets(llama70b)[1]
        before = target.free_token_heads
        target.manager.allocate(1, 16, 1000)
        assert target.free_token_heads < before
        assert target.resident_heads == 16
        assert target.resident_token_heads == pytest.approx(16 * 1000)


class TestGreedyFallback:
    """The water-filling fallback must keep serving when the LP cannot."""

    def test_lp_solver_failure_falls_back_to_greedy(self, llama70b, monkeypatch):
        """Force linprog failure: dispatch_new must still produce valid splits."""
        import repro.solvers.head_dispatch as hd

        class _Failed:
            success = False
            x = None

        monkeypatch.setattr(hd, "linprog", lambda *a, **k: _Failed())
        dispatcher = Dispatcher(llama70b, make_targets(llama70b), solver="lp",
                                local_preference=0.0)
        # Several large requests so the keep-local shortcut does not absorb them.
        decision = dispatcher.dispatch_new([(j, 8000) for j in range(4)])
        assert decision.feasible
        assert decision.method in ("greedy", "local")
        for split in decision.splits.values():
            split.validate()
            assert sum(split.allocation.values()) == llama70b.num_heads

    def test_water_filling_respects_tight_capacity(self, llama70b):
        """With workers too small for a full request, the split must straddle
        targets without overcommitting any single one."""
        targets = make_targets(llama70b, primary_capacity=4.0e9, worker_capacity=1.5e9)
        free_before = {t.target_id: t.free_token_heads for t in targets}
        dispatcher = Dispatcher(llama70b, targets, solver="greedy", local_preference=0.0)
        ctx = 9000
        decision = dispatcher.dispatch_new([(1, ctx), (2, ctx)])
        assert decision.feasible
        assert decision.method in ("greedy", "local")
        used = {t.target_id: 0.0 for t in targets}
        for req_id, split in decision.splits.items():
            split.validate()
            assert sum(split.allocation.values()) == llama70b.num_heads
            for target_id, heads in split.allocation.items():
                assert heads % llama70b.gqa_ratio == 0
                used[target_id] += heads * ctx
        for t in targets:
            assert used[t.target_id] <= free_before[t.target_id] + 1e-6

    def test_greedy_reports_infeasible_when_cluster_full(self, llama70b):
        targets = make_targets(llama70b, primary_capacity=0.2e9, worker_capacity=0.1e9)
        dispatcher = Dispatcher(llama70b, targets, solver="greedy")
        decision = dispatcher.dispatch_new([(1, 500_000)])
        assert not decision.feasible
        assert not decision.splits
