"""Tests for the Parallelizer's primary-worker parallelism search."""

import pytest

from repro.core.parallelizer import Parallelizer, WorkloadHint
from repro.hardware.cluster import ClusterBuilder, paper_cluster
from repro.models.spec import get_model_spec


@pytest.fixture
def hint():
    return WorkloadHint(avg_prompt_tokens=400, avg_context_tokens=800, expected_concurrency=64)


class TestWorkloadHint:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadHint(avg_prompt_tokens=0)
        with pytest.raises(ValueError):
            WorkloadHint(expected_concurrency=0)
        with pytest.raises(ValueError):
            WorkloadHint(prefill_weight=1.5)

    def test_batches(self, hint):
        assert hint.prefill_batch().prefill_tokens == 400
        assert hint.decode_batch().decode_tokens == 64
        assert hint.decode_batch(8).decode_tokens == 8

    def test_kv_demand(self, hint):
        model = get_model_spec("llama-13b")
        assert hint.kv_demand_bytes(model) == pytest.approx(
            64 * 800 * model.kv_bytes_per_token()
        )


class TestPaperClusterPlans:
    @pytest.fixture(scope="class")
    def plan70b(self):
        return Parallelizer(paper_cluster(), get_model_spec("llama-70b"), WorkloadHint()).plan()

    def test_llama70b_roles_match_paper_deployment(self, plan70b):
        """Paper Sec. 7.2: A100s and 3090s are Primary workers, P100s Attention workers."""
        primary_types = {d.spec.name for d in plan70b.primary_devices}
        attention_types = {d.spec.name for d in plan70b.attention_workers}
        assert primary_types == {"a100", "rtx3090"}
        assert attention_types == {"p100"}
        assert len(plan70b.attention_workers) == 4

    def test_llama70b_stage_layers_skewed_towards_a100(self, plan70b):
        instance = plan70b.config.instances[0]
        by_type = {s.devices[0].spec.name: s.num_layers for s in instance.stages}
        assert by_type["a100"] > by_type["rtx3090"]
        assert sum(s.num_layers for s in instance.stages) == 80

    def test_llama70b_fits_in_memory(self, plan70b):
        for instance in plan70b.config.instances:
            assert instance.fits_in_memory(get_model_spec("llama-70b"))

    def test_search_is_fast(self, plan70b):
        # Paper: 4 s on the real cluster; the analytic model is far cheaper.
        assert plan70b.search_seconds < 5.0
        assert plan70b.configs_evaluated > 0

    def test_llama13b_prunes_p100s(self):
        plan = Parallelizer(paper_cluster(), get_model_spec("llama-13b"), WorkloadHint()).plan()
        assert all(d.spec.name == "p100" for d in plan.attention_workers)
        assert len(plan.attention_workers) >= 2


class TestPruningCriterion:
    def test_delta_zero_keeps_every_device_as_primary(self):
        plan = Parallelizer(
            paper_cluster(), get_model_spec("llama-70b"), WorkloadHint(), delta=0.0
        ).plan()
        assert len(plan.attention_workers) == 0

    def test_larger_delta_prunes_at_least_as_many(self):
        small = Parallelizer(paper_cluster(), get_model_spec("llama-70b"), delta=0.02).plan()
        large = Parallelizer(paper_cluster(), get_model_spec("llama-70b"), delta=0.3).plan()
        assert len(large.attention_workers) >= len(small.attention_workers)

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            Parallelizer(paper_cluster(), get_model_spec("llama-13b"), delta=-0.1)


class TestFeasibility:
    def test_model_too_large_for_cluster_raises(self):
        tiny = ClusterBuilder().add_host("p100", 2).build()
        with pytest.raises(RuntimeError):
            Parallelizer(tiny, get_model_spec("llama-70b"), WorkloadHint()).plan()

    def test_single_type_cluster_plans_without_attention_workers(self):
        cluster = ClusterBuilder().add_host("a100", 4).build()
        plan = Parallelizer(cluster, get_model_spec("llama-13b"), WorkloadHint()).plan()
        assert len(plan.attention_workers) == 0
        assert len(plan.primary_devices) >= 1

    def test_max_instances_respected(self):
        plan = Parallelizer(
            paper_cluster(), get_model_spec("llama-13b"), WorkloadHint(), max_instances=1
        ).plan()
        assert plan.num_instances == 1
