"""Tests for dynamic-Attention-parallelism primitives and the Fig.-5 argument."""

import pytest

from repro.core.attention_parallel import (
    HeadSplit,
    batchwise_transfer_overhead,
    headwise_transfer_overhead,
    seqwise_transfer_overhead,
)
from repro.hardware.cluster import ClusterBuilder
from repro.models.spec import get_model_spec


@pytest.fixture
def llama70b():
    return get_model_spec("llama-70b")


@pytest.fixture
def offload_cluster():
    return ClusterBuilder().add_host("a100", 1).add_host("p100", 4).build()


class TestHeadSplit:
    def test_valid_split(self):
        split = HeadSplit(request_id=1, total_heads=64, group_size=8, allocation={-1: 48, 5: 16})
        assert split.heads_on(-1) == 48
        assert split.heads_on(5) == 16
        assert split.heads_on(99) == 0
        assert split.num_targets == 2
        assert not split.is_fully_local
        assert split.offloaded_heads(-1) == 16

    def test_integrity_enforced(self):
        with pytest.raises(ValueError, match="integrity"):
            HeadSplit(request_id=1, total_heads=64, group_size=8, allocation={-1: 40})

    def test_group_multiple_enforced(self):
        with pytest.raises(ValueError, match="multiple"):
            HeadSplit(request_id=1, total_heads=64, group_size=8, allocation={-1: 60, 2: 4})

    def test_negative_heads_rejected(self):
        with pytest.raises(ValueError):
            HeadSplit(request_id=1, total_heads=64, group_size=8, allocation={-1: 72, 2: -8})

    def test_empty_allocation_allowed_before_dispatch(self):
        split = HeadSplit(request_id=1, total_heads=64, group_size=8)
        assert split.num_targets == 0

    def test_fully_local(self):
        split = HeadSplit(request_id=1, total_heads=40, group_size=1, allocation={-1: 40})
        assert split.is_fully_local

    def test_replace_builds_validated_copy(self):
        split = HeadSplit(request_id=1, total_heads=64, group_size=8, allocation={-1: 64})
        new = split.replace({-1: 32, 3: 32})
        assert new.heads_on(3) == 32
        with pytest.raises(ValueError):
            split.replace({-1: 8})

    def test_total_heads_must_divide_by_group(self):
        with pytest.raises(ValueError):
            HeadSplit(request_id=0, total_heads=62, group_size=8)


class TestTransferOverheadComparison:
    def test_headwise_cheaper_at_low_offload_ratio(self, llama70b, offload_cluster):
        """Fig. 5(a): at a 20% offload ratio head-wise is several times cheaper."""
        primary = offload_cluster.devices[0]
        worker = offload_cluster.devices[1:2]
        batch = 32
        heads = llama70b.num_heads * 0.2 * batch
        head_t = headwise_transfer_overhead(llama70b, offload_cluster, primary, worker, heads)
        seq_t = seqwise_transfer_overhead(llama70b, offload_cluster, primary, worker, batch)
        assert seq_t / head_t > 1.5

    def test_headwise_advantage_grows_with_workers(self, llama70b, offload_cluster):
        """Fig. 5(b): spreading over more workers helps head-wise, not seq-wise."""
        primary = offload_cluster.devices[0]
        workers = offload_cluster.devices[1:]
        batch = 32
        ratios = []
        for k in (1, 4):
            head_t = headwise_transfer_overhead(
                llama70b, offload_cluster, primary, workers[:k], llama70b.num_heads * batch / k
            )
            seq_t = seqwise_transfer_overhead(llama70b, offload_cluster, primary, workers[:k], batch)
            ratios.append(seq_t / head_t)
        assert ratios[1] > ratios[0]

    def test_zero_offload_is_free(self, llama70b, offload_cluster):
        primary = offload_cluster.devices[0]
        assert headwise_transfer_overhead(llama70b, offload_cluster, primary, [], 10) == 0.0
        assert headwise_transfer_overhead(
            llama70b, offload_cluster, primary, offload_cluster.devices[1:], 0
        ) == 0.0
        assert seqwise_transfer_overhead(llama70b, offload_cluster, primary, [], 1) == 0.0

    def test_batchwise_migration_most_expensive(self, llama70b, offload_cluster):
        """Whole-request migration moves the entire KV cache -- orders of magnitude more."""
        primary, worker = offload_cluster.devices[0], offload_cluster.devices[1]
        batch_t = batchwise_transfer_overhead(llama70b, offload_cluster, primary, worker, 1000)
        head_t = headwise_transfer_overhead(
            llama70b, offload_cluster, primary, [worker], llama70b.num_heads * 0.5
        )
        assert batch_t > 50 * head_t
