"""Tests for the re-dispatching policy (compute balance + cache balance)."""

import pytest

from repro.core.attention_parallel import HeadSplit
from repro.core.dispatcher import Dispatcher
from repro.core.redispatch import RedispatchAction, RedispatchPolicy
from repro.models.spec import get_model_spec

from tests.core.test_dispatcher import make_targets


@pytest.fixture
def llama70b():
    return get_model_spec("llama-70b")


def make_policy(model, theta=0.5, **target_kwargs):
    targets = make_targets(model, **target_kwargs)
    dispatcher = Dispatcher(model, targets, local_preference=0.0)
    return RedispatchPolicy(model, dispatcher, theta=theta), targets, dispatcher


def place(targets, model, splits_spec):
    """Materialise request placements in the managers and return split objects."""
    splits = {}
    for rid, (alloc, ctx) in splits_spec.items():
        for target_id, heads in alloc.items():
            if heads > 0:
                target = next(t for t in targets if t.target_id == target_id)
                target.manager.allocate(rid, heads, ctx)
        splits[rid] = HeadSplit(
            request_id=rid, total_heads=model.num_heads, group_size=model.gqa_ratio, allocation=alloc
        )
    return splits


def test_theta_validation(llama70b):
    policy, *_ = make_policy(llama70b)
    with pytest.raises(ValueError):
        RedispatchPolicy(llama70b, policy.dispatcher, theta=0.0)


class TestComputeBalance:
    def test_no_requests_no_action(self, llama70b):
        policy, *_ = make_policy(llama70b)
        decision = policy.check_compute_balance({}, {})
        assert decision.action == RedispatchAction.NONE

    def test_balanced_state_no_action(self, llama70b):
        policy, targets, _ = make_policy(llama70b)
        splits = place(targets, llama70b, {1: ({-1: 64}, 500)})
        decision = policy.check_compute_balance(splits, {1: 500})
        assert decision.action == RedispatchAction.NONE

    def test_imbalanced_long_request_triggers_redispatch(self, llama70b):
        # Everything piled on a slow worker while the primary idles: way past theta.
        policy, targets, _ = make_policy(
            llama70b, worker_speed=5.0, transfer_beta=1e-6, worker_capacity=60e9
        )
        splits = place(
            targets,
            llama70b,
            {
                1: ({0: 64}, 20_000),
                2: ({0: 64}, 15_000),
            },
        )
        contexts = {1: 20_000, 2: 15_000}
        decision = policy.check_compute_balance(splits, contexts)
        assert decision.action == RedispatchAction.REDISPATCH
        assert decision.request_id in (1, 2)
        assert decision.new_split is not None
        # The new placement moves load off the bottleneck worker.
        assert decision.new_split.heads_on(0) < 64

    def test_victim_is_largest_contributor_on_bottleneck(self, llama70b):
        policy, targets, _ = make_policy(
            llama70b, worker_speed=5.0, transfer_beta=1e-6, worker_capacity=60e9
        )
        splits = place(
            targets,
            llama70b,
            {
                1: ({0: 64}, 25_000),   # the big one
                2: ({0: 64}, 5_000),
            },
        )
        decision = policy.check_compute_balance(splits, {1: 25_000, 2: 5_000})
        if decision.action == RedispatchAction.REDISPATCH:
            assert decision.request_id == 1


class TestCacheBalance:
    def test_no_request_on_exhausted_device(self, llama70b):
        policy, targets, _ = make_policy(llama70b)
        splits = place(targets, llama70b, {1: ({-1: 64}, 500)})
        decision = policy.handle_cache_exhaustion(0, splits, {1: 500}, [1])
        assert decision.action == RedispatchAction.NONE

    def test_redispatch_when_cluster_has_room(self, llama70b):
        policy, targets, _ = make_policy(
            llama70b, worker_capacity=2e9, primary_capacity=60e9, transfer_beta=1e-6
        )
        splits = place(targets, llama70b, {1: ({0: 64}, 2000), 2: ({0: 64}, 2500)})
        contexts = {1: 2000, 2: 2500}
        decision = policy.handle_cache_exhaustion(0, splits, contexts, [1, 2])
        assert decision.action == RedispatchAction.REDISPATCH
        # Modified LIFO: the most recently admitted request on the device.
        assert decision.request_id == 2

    def test_preempt_when_no_capacity_anywhere(self, llama70b):
        policy, targets, _ = make_policy(
            llama70b, worker_capacity=1e8, primary_capacity=1e8
        )
        splits = place(targets, llama70b, {1: ({0: 64}, 100)})
        decision = policy.handle_cache_exhaustion(0, splits, {1: 500_000}, [1])
        assert decision.action == RedispatchAction.PREEMPT
        assert decision.request_id == 1
