"""Tests for the elasticity subsystem: autoscaling and admission control."""

import pytest

from repro.api import build_replicated_system, quick_serve, run_system
from repro.core.elasticity import (
    KVThresholdAdmission,
    QueueDepthAutoscaler,
    QueueThresholdAdmission,
    ReplicaState,
    TargetKVUtilizationAutoscaler,
    make_admission,
    make_autoscaler,
)
from repro.sim.request import Request
from repro.workloads.arrivals import RatePhase, diurnal_phases, spike_phases
from repro.workloads.trace import generate_trace


def states(utils, queues=None, active=None, capacity=1e9):
    queues = queues or [0] * len(utils)
    active = active if active is not None else [True] * len(utils)
    return [
        ReplicaState(
            index=i,
            active=active[i],
            kv_utilization=utils[i],
            queue_depth=queues[i],
            num_running=0,
            capacity_bytes=capacity,
        )
        for i in range(len(utils))
    ]


def req(request_id=0):
    return Request(request_id=request_id, arrival_time=0.0, prompt_tokens=16, output_tokens=4)


class TestAutoscalerPolicies:
    def test_factory_resolves_names_and_rejects_unknown(self):
        assert make_autoscaler("target-kv").name == "target-kv"
        assert make_autoscaler("queue-depth").name == "queue-depth"
        assert make_autoscaler(None) is None
        policy = TargetKVUtilizationAutoscaler()
        assert make_autoscaler(policy) is policy
        with pytest.raises(ValueError, match="unknown autoscaler"):
            make_autoscaler("yolo-scaler")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TargetKVUtilizationAutoscaler(target_utilization=0.0)
        with pytest.raises(ValueError):
            TargetKVUtilizationAutoscaler(interval=0.0)
        with pytest.raises(ValueError):
            QueueDepthAutoscaler(target_queue_per_replica=0)
        with pytest.raises(ValueError):
            TargetKVUtilizationAutoscaler(min_replicas=0)

    def test_target_kv_scales_up_proportionally(self):
        policy = TargetKVUtilizationAutoscaler(target_utilization=0.5, queue_pressure=0.0)
        # 2 active replicas at 0.9 utilization -> ceil(2 * 0.9 / 0.5) = 4.
        s = states([0.9, 0.9, 0.0, 0.0], active=[True, True, False, False])
        assert policy.desired_active(s, now=0.0) == 4

    def test_target_kv_queue_pressure_counts_cold_backlog(self):
        eager = TargetKVUtilizationAutoscaler(target_utilization=0.5, queue_pressure=0.1)
        s = states([0.0, 0.0], queues=[10, 10], active=[True, False])
        # KV empty but 10 queued at the single active replica: 0.1 * 10 / 0.5 = 2.
        assert eager.desired_active(s, now=0.0) == 2

    def test_target_kv_scale_down_needs_patience_and_is_gradual(self):
        policy = TargetKVUtilizationAutoscaler(
            target_utilization=0.5, queue_pressure=0.0, scale_down_patience=2
        )
        s = states([0.01, 0.01, 0.01], active=[True, True, True])
        assert policy.desired_active(s, now=0.0) == 3  # first low tick: hold
        assert policy.desired_active(s, now=5.0) == 2  # second: drain ONE replica
        drained = states([0.01, 0.01, 0.0], active=[True, True, False])
        assert policy.desired_active(drained, now=10.0) == 2  # patience restarts

    def test_queue_depth_policy(self):
        policy = QueueDepthAutoscaler(target_queue_per_replica=4.0)
        # 16 queued across 2 active replicas -> 4 replicas wanted (fleet has 4).
        s = states([0.5, 0.5, 0.0, 0.0], queues=[8, 8, 0, 0],
                   active=[True, True, False, False])
        assert policy.desired_active(s, now=0.0) == 4
        idle = states([0.1, 0.1], queues=[0, 0], active=[True, True])
        assert policy.desired_active(idle, now=1.0) == 2  # first idle tick holds
        assert policy.desired_active(idle, now=2.0) == 1

    def test_desired_never_exceeds_fleet_or_drops_below_min(self):
        policy = TargetKVUtilizationAutoscaler(target_utilization=0.1, min_replicas=2)
        hot = states([1.0, 1.0, 1.0], active=[True, True, True])
        assert policy.desired_active(hot, now=0.0) == 3
        cold = states([0.0, 0.0, 0.0], active=[True, True, True])
        policy2 = TargetKVUtilizationAutoscaler(target_utilization=0.9, min_replicas=2,
                                                scale_down_patience=1)
        assert policy2.desired_active(cold, now=0.0) >= 2


class TestAdmissionControllers:
    def test_factory_resolves_names_and_rejects_unknown(self):
        assert make_admission("kv-threshold").name == "kv-threshold"
        assert make_admission("queue-threshold").name == "queue-threshold"
        assert make_admission(None) is None
        ctrl = KVThresholdAdmission()
        assert make_admission(ctrl) is ctrl
        with pytest.raises(ValueError, match="unknown admission"):
            make_admission("coin-flip")

    def test_admits_while_any_active_replica_has_room(self):
        ctrl = KVThresholdAdmission(max_utilization=0.8)
        s = states([0.9, 0.3], active=[True, True])
        assert ctrl.decide(req(), s, now=0.0).action == "admit"

    def test_rejects_when_all_active_replicas_overloaded(self):
        ctrl = KVThresholdAdmission(max_utilization=0.8, mode="reject")
        s = states([0.9, 0.85], active=[True, True])
        assert ctrl.decide(req(), s, now=0.0).action == "reject"

    def test_drained_replicas_do_not_count_as_room(self):
        ctrl = KVThresholdAdmission(max_utilization=0.8)
        s = states([0.95, 0.0], active=[True, False])
        assert ctrl.decide(req(), s, now=0.0).action == "reject"

    def test_defer_mode_bounds_retries_then_rejects(self):
        ctrl = QueueThresholdAdmission(
            max_queue_depth=1, mode="defer", retry_delay=0.5, max_defers=3
        )
        s = states([0.5], queues=[5])
        r = req(7)
        for _ in range(3):
            decision = ctrl.decide(r, s, now=0.0)
            assert decision.action == "defer"
            assert decision.retry_delay == 0.5
        assert ctrl.decide(r, s, now=0.0).action == "reject"
        # Retry budget resets once the request is finally admitted elsewhere.
        assert ctrl.decide(req(8), s, now=0.0).action == "defer"

    def test_validation(self):
        with pytest.raises(ValueError):
            KVThresholdAdmission(max_utilization=0.0)
        with pytest.raises(ValueError):
            QueueThresholdAdmission(max_queue_depth=0)
        with pytest.raises(ValueError):
            KVThresholdAdmission(mode="drop")


@pytest.mark.slow
class TestElasticIntegration:
    def build(self, n=4, **kwargs):
        return build_replicated_system(
            "static-tp", "llama-13b", n, cluster_kind="small", router="least-kv",
            seed=0, **kwargs,
        )

    def test_autoscaler_rises_in_bursts_and_drains_idle(self):
        """Acceptance: on the Fig.-14 piecewise workload the active-replica
        count rises during the burst phases and drains back in the idle
        phases."""
        phases = [
            RatePhase(rate=8.0, duration=25.0),
            RatePhase(rate=1e-6, duration=25.0),
            RatePhase(rate=4.0, duration=25.0),
            RatePhase(rate=1e-6, duration=25.0),
        ]
        autoscaler = TargetKVUtilizationAutoscaler(
            target_utilization=0.25, interval=2.0, min_replicas=1
        )
        system = self.build(autoscaler=autoscaler)
        assert system.num_active == 1  # starts at the minimum
        trace = generate_trace("sharegpt", 0.0, 300, seed=0, phases=phases)
        result = run_system(system, trace)
        assert result.summary.num_finished == len(trace)
        series = result.recorder.raw("active_replicas", "cluster")
        assert series, "autoscaler must record the active-replica series"
        burst1 = [v for t, v in series if t <= 25.0]
        idle1 = [v for t, v in series if 25.0 < t <= 50.0]
        assert max(burst1) > 1.0, "burst phase must scale out beyond the minimum"
        assert idle1 and idle1[-1] < max(burst1), "idle phase must drain replicas"
        assert min(v for _, v in series) >= 1.0
        # scale_events mirrors the recorder series transitions.
        assert system.scale_events
        assert max(n for _, n in system.scale_events) == int(max(v for _, v in series))

    def test_drained_replicas_finish_in_flight_work(self):
        """Draining must never strand requests: everything routed to a replica
        that later drains still completes."""
        autoscaler = QueueDepthAutoscaler(
            target_queue_per_replica=2.0, interval=1.0, min_replicas=1
        )
        system = self.build(n=3, autoscaler=autoscaler)
        trace = generate_trace("sharegpt", 10.0, 60, seed=1)
        result = run_system(system, trace)
        assert result.summary.num_finished == 60
        assert result.num_dropped == 0
        assert sum(system.requests_per_replica) == 60

    def test_disabled_autoscaler_schedules_no_control_ticks(self):
        system = self.build()
        assert system.control_interval() is None
        trace = generate_trace("sharegpt", 10.0, 16, seed=0)
        result = run_system(system, trace)
        assert result.recorder.raw("active_replicas", "cluster") == []
        assert system.num_active == len(system.replicas)

    def test_admission_rejections_feed_goodput_block(self):
        system = build_replicated_system(
            "static-tp", "llama-13b", 2, cluster_kinds=["rtx3090:2", "rtx3090:2"],
            router="least-kv", seed=0,
            admission=QueueThresholdAdmission(max_queue_depth=1, mode="reject"),
        )
        trace = generate_trace("longbench", 20.0, 48, seed=0)
        result = run_system(system, trace)
        s = result.summary
        assert s.num_rejected > 0
        assert s.num_finished + s.num_rejected == 48
        assert s.rejection_rate == pytest.approx(s.num_rejected / 48)
        assert 0.0 <= s.slo_attainment <= 1.0
        assert s.goodput_rps <= s.throughput_rps

    def test_policy_instances_are_reusable_across_runs(self):
        """The same controller/autoscaler instance run twice must give
        identical results: per-run state resets on system construction."""
        adm = QueueThresholdAdmission(max_queue_depth=1, mode="defer",
                                      retry_delay=0.5, max_defers=5)
        auto = TargetKVUtilizationAutoscaler(target_utilization=0.3, interval=2.0)
        results = []
        for _ in range(2):
            results.append(quick_serve(
                model="llama-13b", system="static-tp", dataset="longbench",
                request_rate=20.0, num_requests=24, seed=0,
                cluster_kinds=["rtx3090:2", "rtx3090:2"], router="least-kv",
                admission=adm, autoscaler=auto,
            ))
        a, b = results
        assert a.summary.num_rejected == b.summary.num_rejected
        assert a.summary.num_deferrals == b.summary.num_deferrals
        assert [r.finish_time for r in a.metrics.records] == [
            r.finish_time for r in b.metrics.records
        ]

    def test_rejection_rate_counts_unfinished_admits(self):
        """Offered-load denominator includes admitted-but-unfinished requests
        (truncated runs must not overstate the rejection rate)."""
        from repro.sim.metrics import MetricsCollector

        collector = MetricsCollector()
        for t in range(90):
            collector.observe_arrival(float(t))
        for t in range(10):
            collector.observe_rejection(req(t), float(t))
        # No request ever finishes (run truncated): rate is 10/100, not 10/10.
        assert collector.summary().rejection_rate == pytest.approx(0.1)

    def test_deferral_opens_the_duration_window(self):
        """A run whose first arrivals are deferred must count the original
        offered-load time in its duration, not just the retry time."""
        from repro.sim.metrics import MetricsCollector
        from repro.sim.request import Request

        collector = MetricsCollector()
        collector.observe_deferral(Request(0, 0.0, 16, 4), now=0.0)
        collector.observe_arrival(now=2.0)
        assert collector._start_time == 0.0

    def test_single_replica_admission_accepts_explicit_cluster(self):
        from repro.api import build_cluster

        result = quick_serve(
            model="llama-13b", system="static-tp", dataset="sharegpt",
            request_rate=8.0, num_requests=6, seed=0,
            cluster=build_cluster("small"),
            admission=QueueThresholdAdmission(max_queue_depth=8),
        )
        assert result.summary.num_finished == 6

    def test_defer_mode_serves_more_than_reject_mode(self):
        common = dict(
            model="llama-13b", system="static-tp", dataset="longbench",
            request_rate=20.0, num_requests=32, seed=0,
            cluster_kinds=["rtx3090:2", "rtx3090:2"], router="least-kv",
        )
        rejecting = quick_serve(
            admission=QueueThresholdAdmission(max_queue_depth=1, mode="reject"), **common
        )
        deferring = quick_serve(
            admission=QueueThresholdAdmission(
                max_queue_depth=1, mode="defer", retry_delay=1.0, max_defers=200
            ),
            **common,
        )
        assert deferring.summary.num_deferrals > 0
        assert deferring.summary.num_finished >= rejecting.summary.num_finished
        assert deferring.summary.num_rejected <= rejecting.summary.num_rejected

    def test_autoscaled_run_is_deterministic(self):
        phases = spike_phases(base_rate=1.0, spike_rate=8.0, base_duration=15.0,
                              spike_duration=10.0, num_spikes=1)
        results = []
        for _ in range(2):
            system = self.build(
                n=3,
                autoscaler=TargetKVUtilizationAutoscaler(
                    target_utilization=0.3, interval=2.0
                ),
                admission=KVThresholdAdmission(max_utilization=0.95),
            )
            trace = generate_trace("sharegpt", 0.0, 120, seed=3, phases=phases)
            results.append(run_system(system, trace))
        a, b = results
        assert [r.finish_time for r in a.metrics.records] == [
            r.finish_time for r in b.metrics.records
        ]
        assert a.recorder.raw("active_replicas", "cluster") == b.recorder.raw(
            "active_replicas", "cluster"
        )

    def test_diurnal_schedule_drives_multiple_scale_cycles(self):
        phases = diurnal_phases(base_rate=0.5, peak_rate=8.0, period=120.0,
                                num_segments=8, cycles=1)
        system = self.build(
            n=3,
            autoscaler=TargetKVUtilizationAutoscaler(target_utilization=0.3, interval=3.0),
        )
        trace = generate_trace("sharegpt", 0.0, 400, seed=0, phases=phases)
        result = run_system(system, trace)
        assert result.summary.num_finished == len(trace)
        series = result.recorder.raw("active_replicas", "cluster")
        assert max(v for _, v in series) > 1.0


class TestCostAwareScaleUp:
    def mixed_states(self):
        """An inactive heterogeneous pool behind one hot active replica."""
        return [
            ReplicaState(0, True, 0.95, 8, 4, capacity_bytes=10e9, cost_per_hour=3.0),
            ReplicaState(1, False, 0.0, 0, 0, capacity_bytes=20e9, cost_per_hour=6.0),
            ReplicaState(2, False, 0.0, 0, 0, capacity_bytes=4e9, cost_per_hour=0.7),
            ReplicaState(3, False, 0.0, 0, 0, capacity_bytes=8e9, cost_per_hour=1.7),
        ]

    def test_default_choice_is_index_order(self):
        policy = TargetKVUtilizationAutoscaler(target_utilization=0.6)
        assert policy.choose_scale_up(self.mixed_states(), 2, 0.0) == [1, 2]

    def test_cost_aware_picks_cheapest_clearing_blueprint(self):
        # Deficit = 0.95*10e9 - 0.6*10e9 = 3.5e9 bytes: every inactive
        # replica clears it, so the cheapest ($0.7) wins outright.
        policy = TargetKVUtilizationAutoscaler(target_utilization=0.6, cost_aware=True)
        assert policy.choose_scale_up(self.mixed_states(), 1, 0.0) == [2]

    def test_cost_aware_requires_capacity_to_clear_deficit(self):
        # Deficit 3.5e9 with the cheap replica shrunk below it: only the
        # bigger blueprints clear the deficit, and the cheaper of those wins.
        states = self.mixed_states()
        states[2] = ReplicaState(2, False, 0.0, 0, 0, capacity_bytes=1e9, cost_per_hour=0.7)
        policy = TargetKVUtilizationAutoscaler(target_utilization=0.6, cost_aware=True)
        assert policy.choose_scale_up(states, 1, 0.0) == [3]

    def test_cost_aware_falls_back_to_capacity_per_dollar(self):
        # Nothing clears a huge deficit: rank by cost per byte instead.
        states = [
            ReplicaState(0, True, 1.0, 0, 0, capacity_bytes=100e9, cost_per_hour=3.0),
            ReplicaState(1, False, 0.0, 0, 0, capacity_bytes=2e9, cost_per_hour=1.0),
            ReplicaState(2, False, 0.0, 0, 0, capacity_bytes=8e9, cost_per_hour=2.0),
        ]
        policy = TargetKVUtilizationAutoscaler(target_utilization=0.1, cost_aware=True)
        # replica 2: 0.25 $/GB beats replica 1: 0.5 $/GB.
        assert policy.choose_scale_up(states, 1, 0.0) == [2]

    def test_cost_aware_multi_pick_decrements_deficit(self):
        policy = TargetKVUtilizationAutoscaler(target_utilization=0.6, cost_aware=True)
        picks = policy.choose_scale_up(self.mixed_states(), 3, 0.0)
        assert picks[0] == 2  # cheapest clears the deficit first
        assert sorted(picks) == [1, 2, 3]

    def test_choice_ignores_active_replicas(self):
        policy = TargetKVUtilizationAutoscaler(cost_aware=True)
        states = self.mixed_states()
        assert 0 not in policy.choose_scale_up(states, 4, 0.0)

    def test_cost_aware_integration_activates_cheapest_first(self):
        """End to end: a heterogeneous fleet under load brings up the
        cheapest inactive blueprint, not the lowest-index one."""
        autoscaler = TargetKVUtilizationAutoscaler(
            target_utilization=0.2, interval=1.0, min_replicas=1, cost_aware=True
        )
        system = build_replicated_system(
            "static-tp", "llama-13b", 3,
            cluster_kinds=["rtx3090:2", "a100:2", "t4:4"],
            router="least-kv", seed=0, autoscaler=autoscaler,
        )
        states = system.replica_states(0.0)
        assert [s.cost_per_hour for s in states] == pytest.approx([1.7, 6.0, 1.4])
        # The policy's blueprint choice on the live fleet: the cheap T4
        # replica (index 2) before the expensive A100 one (index 1).
        assert autoscaler.choose_scale_up(states, 2, 0.0) == [2, 1]
        trace = generate_trace("sharegpt", 14.0, 80, seed=0)
        result = run_system(system, trace)
        assert result.summary.num_finished == 80
        assert max(n for _, n in system.scale_events) >= 2
        # The cheap replica saw traffic; scale-up actually used the choice.
        assert system.requests_per_replica[2] > 0
