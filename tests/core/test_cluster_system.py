"""Tests for the multi-replica ClusterServingSystem and its routers."""

import pytest

from repro.api import build_cluster, build_replicated_system, quick_serve, run_system
from repro.core.cluster_system import (
    ClusterServingSystem,
    LeastKVLoadRouter,
    PowerOfTwoChoicesRouter,
    RoundRobinRouter,
    make_router,
    replica_kv_utilization,
)
from repro.workloads.trace import generate_trace

pytestmark = pytest.mark.slow


def build_two_replicas(system="static-tp", router="round-robin", seed=0):
    return build_replicated_system(
        system, "llama-13b", 2, router=router, cluster_kind="small", seed=seed
    )


class TestConstruction:
    def test_requires_replicas(self):
        with pytest.raises(ValueError, match="at least one replica"):
            ClusterServingSystem([], router="round-robin")

    def test_unknown_router_rejected(self):
        with pytest.raises(ValueError, match="unknown router"):
            make_router("random-drop")

    def test_router_instance_passthrough(self):
        router = RoundRobinRouter()
        assert make_router(router) is router

    def test_units_are_union_of_replica_units(self):
        system = build_two_replicas()
        per_replica = [len(r.units) for r in system.replicas]
        assert len(system.units) == sum(per_replica)
        assert len({id(u) for u in system.units}) == len(system.units)

    def test_cache_bytes_sum_over_replicas(self):
        system = build_two_replicas()
        assert system.available_cache_bytes() == pytest.approx(
            sum(r.available_cache_bytes() for r in system.replicas)
        )

    def test_describe_mentions_router_and_replicas(self):
        system = build_two_replicas(router="least-kv")
        text = system.describe()
        assert "least-kv" in text
        assert "2x" in system.name


class TestRouterDeterminism:
    @pytest.mark.parametrize("router", ["round-robin", "least-kv", "power-of-two"])
    def test_same_seed_same_results(self, router):
        """Two runs with identical seeds must produce identical metrics."""
        results = []
        for _ in range(2):
            results.append(
                quick_serve(
                    model="llama-13b",
                    system="static-tp",
                    dataset="sharegpt",
                    request_rate=10.0,
                    num_requests=32,
                    cluster_kind="small",
                    num_replicas=2,
                    router=router,
                    seed=0,
                )
            )
        a, b = results
        assert a.summary.mean_normalized_latency == b.summary.mean_normalized_latency
        assert a.summary.p95_ttft == b.summary.p95_ttft
        assert [r.finish_time for r in a.metrics.records] == [
            r.finish_time for r in b.metrics.records
        ]

    def test_round_robin_cycles(self):
        system = build_two_replicas()
        trace = generate_trace("sharegpt", 8.0, 16, seed=0)
        run_system(system, trace)
        # Round-robin alternates strictly, so a 16-request trace splits 8/8.
        assert system.requests_per_replica == [8, 8]

    def test_power_of_two_seed_changes_sampling(self):
        picks = {}
        for seed in (0, 1):
            router = PowerOfTwoChoicesRouter(seed=seed)
            system = build_two_replicas()
            picks[seed] = [router.select(None, system.replicas, 0.0) for _ in range(32)]
        assert picks[0] != picks[1]


class TestRouterBalancing:
    def test_least_kv_prefers_emptier_replica(self):
        system = build_two_replicas(router="least-kv")
        # Load replica 0 by running a burst through it directly.
        busy = system.replicas[0]
        trace = generate_trace("sharegpt", 50.0, 8, seed=1)
        for idx, entry in enumerate(list(trace)[:4]):
            unit = busy.units[0]
            from repro.sim.request import Request

            req = Request(idx + 1000, entry.arrival_time, entry.prompt_tokens, entry.output_tokens)
            unit.enqueue(req, 0.0)
            it = unit.next_iteration(0.0)
            assert it is not None
        assert replica_kv_utilization(system.replicas[0]) > 0.0
        router = LeastKVLoadRouter()
        assert router.select(None, system.replicas, 0.0) == 1

    def test_power_of_two_never_exceeds_capacity(self):
        """Property test: under power-of-two routing at a saturating rate, no
        device of any replica ever reports utilization above 1.0, and the
        block managers never overcommit."""
        system = build_two_replicas(router="power-of-two", seed=3)
        trace = generate_trace("sharegpt", 40.0, 64, seed=3)
        result = run_system(system, trace)
        assert result.summary.num_finished > 0
        for replica in system.replicas:
            for unit in replica.units:
                for device, util in unit.kv_utilization().items():
                    assert 0.0 <= util <= 1.0, f"{device} overcommitted: {util}"
        # The recorder's cache_usage series must stay within [0, 1] too.
        for key in result.recorder.keys("cache_usage"):
            assert all(0.0 <= v <= 1.0 for _, v in result.recorder.raw("cache_usage", key))

    def test_recorder_keys_disambiguate_replicas(self):
        """Same-blueprint replicas must not merge their device time series."""
        system = build_two_replicas(router="round-robin")
        trace = generate_trace("sharegpt", 10.0, 16, seed=0)
        result = run_system(system, trace)
        keys = result.recorder.keys("cache_usage")
        assert keys, "expected cache_usage series"
        assert all(k.startswith(("r0/", "r1/")) for k in keys)
        assert any(k.startswith("r0/") for k in keys)
        assert any(k.startswith("r1/") for k in keys)


class TestClusterAccounting:
    def test_requests_per_replica_sums_to_total_arrivals(self):
        for router in ("round-robin", "least-kv", "power-of-two",
                       "weighted-round-robin", "weighted-least-kv",
                       "weighted-power-of-two"):
            system = build_two_replicas(router=router)
            trace = generate_trace("sharegpt", 10.0, 24, seed=0)
            run_system(system, trace)
            assert sum(system.requests_per_replica) == len(trace), router
            assert all(c >= 0 for c in system.requests_per_replica)

    def test_requests_per_replica_counts_admitted_only(self):
        from repro.core.elasticity import QueueThresholdAdmission

        system = build_replicated_system(
            "static-tp", "llama-13b", 2, cluster_kinds=["rtx3090:2", "rtx3090:2"],
            router="least-kv", seed=0,
            admission=QueueThresholdAdmission(max_queue_depth=1, mode="reject"),
        )
        trace = generate_trace("longbench", 20.0, 32, seed=0)
        result = run_system(system, trace)
        routed = sum(system.requests_per_replica)
        assert routed == len(trace) - result.summary.num_rejected
        assert result.summary.num_rejected > 0

    def test_cache_bytes_sum_over_heterogeneous_replicas(self):
        system = build_replicated_system(
            "static-tp", "llama-13b", 2, cluster_kinds=["a100:1,rtx3090:2", "rtx3090:2"],
            router="weighted-least-kv", seed=0,
        )
        assert system.available_cache_bytes() == pytest.approx(
            sum(r.available_cache_bytes() for r in system.replicas)
        )
        caps = [r.available_cache_bytes() for r in system.replicas]
        assert caps[0] > caps[1]  # the a100 replica really is bigger

    def test_recorder_prefixes_never_collide_after_stripping(self):
        """Prefixed keys map 1:1 onto (replica, device) pairs: stripping the
        r<N>/ prefix yields the same per-replica key set for every replica."""
        system = build_two_replicas()
        trace = generate_trace("sharegpt", 10.0, 16, seed=0)
        result = run_system(system, trace)
        keys = result.recorder.keys("cache_usage")
        by_replica = {}
        for key in keys:
            prefix, _, device = key.partition("/")
            assert device and "/" not in device
            by_replica.setdefault(prefix, set()).add(device)
        assert set(by_replica) == {"r0", "r1"}
        assert by_replica["r0"] == by_replica["r1"]
        # Total key count == replicas x devices: nothing merged or dropped.
        assert len(keys) == sum(len(v) for v in by_replica.values())

    def test_same_timestamp_burst_spreads_under_least_kv(self):
        """Memoised loads must be invalidated per routed replica: a burst of
        arrivals at one identical timestamp still spreads across replicas
        instead of piling onto the pre-burst minimum."""
        from repro.workloads.trace import Trace, TraceEntry

        system = build_two_replicas(router="least-kv")
        entries = [TraceEntry(1.0, 512, 8) for _ in range(4)]
        run_system(system, Trace(entries=entries, dataset="sharegpt"))
        # Stale caching would send all 4 to replica 0; invalidation makes the
        # second arrival see replica 0's fresh allocation and go to replica 1
        # (later ties resolve to index 0 again, matching pre-memoisation
        # recompute-every-arrival behaviour).
        assert system.requests_per_replica == [3, 1]

    def test_same_timestamp_states_refresh_for_admission(self):
        """replica_states at one timestamp reflects arrivals routed earlier in
        that same timestamp (queue/KV state is re-read after invalidation)."""
        from repro.sim.request import Request

        system = build_two_replicas(router="round-robin")
        before = system.replica_states(1.0)
        assert all(s.kv_utilization == 0.0 for s in before)
        unit = system.route(Request(0, 1.0, 512, 8), 1.0)
        unit.enqueue(Request(0, 1.0, 512, 8), 1.0)
        after = system.replica_states(1.0)
        assert after[0].queue_depth == 1  # round-robin sent it to replica 0
        assert after[1] is before[1]      # untouched replica: cached snapshot

    def test_legacy_router_subclass_without_super_init_still_works(self):
        """Pre-elasticity user routers subclassed an ABC with no __init__;
        the base-class caches must lazy-init rather than require super()."""
        from repro.core.cluster_system import ReplicaRouter

        class LegacyRouter(ReplicaRouter):
            name = "legacy"

            def __init__(self):  # deliberately no super().__init__()
                self._i = 0

            def select(self, request, replicas, now):
                self._i += 1
                return min(
                    range(len(replicas)), key=lambda i: self.kv_load(replicas[i], now)
                )

        system = build_two_replicas()
        system.router = LegacyRouter()
        trace = generate_trace("sharegpt", 10.0, 8, seed=0)
        result = run_system(system, trace)
        assert result.summary.num_finished == 8
        assert sum(system.requests_per_replica) == 8

    def test_weighted_routers_shift_load_toward_capacity(self):
        system = build_replicated_system(
            "static-tp", "llama-13b", 2, cluster_kinds=["a100:1,rtx3090:2", "rtx3090:2"],
            router="weighted-round-robin", seed=0,
        )
        trace = generate_trace("sharegpt", 10.0, 60, seed=0)
        run_system(system, trace)
        big, small = system.requests_per_replica
        assert big + small == 60
        assert big > small, "capacity weighting must favour the larger replica"


class TestEndToEnd:
    def test_two_replicas_beat_one_at_high_rate(self):
        """Data parallelism must relieve a saturated deployment."""
        common = dict(
            model="llama-13b",
            system="static-tp",
            dataset="sharegpt",
            request_rate=16.0,
            num_requests=48,
            cluster_kind="small",
            seed=0,
        )
        single = quick_serve(num_replicas=1, **common)
        double = quick_serve(num_replicas=2, router="round-robin", **common)
        assert double.summary.mean_normalized_latency < single.summary.mean_normalized_latency
        assert double.summary.num_finished >= single.summary.num_finished

    @pytest.mark.parametrize("system_name", ["hetis", "splitwise", "hexgen"])
    def test_every_system_runs_replicated(self, system_name):
        result = quick_serve(
            model="llama-13b",
            system=system_name,
            dataset="sharegpt",
            request_rate=8.0,
            num_requests=16,
            cluster_kind="small",
            num_replicas=2,
            router="least-kv",
            seed=0,
        )
        assert result.summary.num_finished == 16

    def test_shared_cluster_rejected(self):
        with pytest.raises(ValueError, match="cluster_kind"):
            quick_serve(cluster=build_cluster("small"), num_replicas=2)
