"""Tests for the multi-replica ClusterServingSystem and its routers."""

import pytest

from repro.api import build_cluster, build_replicated_system, quick_serve, run_system
from repro.core.cluster_system import (
    ClusterServingSystem,
    LeastKVLoadRouter,
    PowerOfTwoChoicesRouter,
    RoundRobinRouter,
    make_router,
    replica_kv_utilization,
)
from repro.workloads.trace import generate_trace

pytestmark = pytest.mark.slow


def build_two_replicas(system="static-tp", router="round-robin", seed=0):
    return build_replicated_system(
        system, "llama-13b", 2, router=router, cluster_kind="small", seed=seed
    )


class TestConstruction:
    def test_requires_replicas(self):
        with pytest.raises(ValueError, match="at least one replica"):
            ClusterServingSystem([], router="round-robin")

    def test_unknown_router_rejected(self):
        with pytest.raises(ValueError, match="unknown router"):
            make_router("random-drop")

    def test_router_instance_passthrough(self):
        router = RoundRobinRouter()
        assert make_router(router) is router

    def test_units_are_union_of_replica_units(self):
        system = build_two_replicas()
        per_replica = [len(r.units) for r in system.replicas]
        assert len(system.units) == sum(per_replica)
        assert len({id(u) for u in system.units}) == len(system.units)

    def test_cache_bytes_sum_over_replicas(self):
        system = build_two_replicas()
        assert system.available_cache_bytes() == pytest.approx(
            sum(r.available_cache_bytes() for r in system.replicas)
        )

    def test_describe_mentions_router_and_replicas(self):
        system = build_two_replicas(router="least-kv")
        text = system.describe()
        assert "least-kv" in text
        assert "2x" in system.name


class TestRouterDeterminism:
    @pytest.mark.parametrize("router", ["round-robin", "least-kv", "power-of-two"])
    def test_same_seed_same_results(self, router):
        """Two runs with identical seeds must produce identical metrics."""
        results = []
        for _ in range(2):
            results.append(
                quick_serve(
                    model="llama-13b",
                    system="static-tp",
                    dataset="sharegpt",
                    request_rate=10.0,
                    num_requests=32,
                    cluster_kind="small",
                    num_replicas=2,
                    router=router,
                    seed=0,
                )
            )
        a, b = results
        assert a.summary.mean_normalized_latency == b.summary.mean_normalized_latency
        assert a.summary.p95_ttft == b.summary.p95_ttft
        assert [r.finish_time for r in a.metrics.records] == [
            r.finish_time for r in b.metrics.records
        ]

    def test_round_robin_cycles(self):
        system = build_two_replicas()
        trace = generate_trace("sharegpt", 8.0, 16, seed=0)
        run_system(system, trace)
        # Round-robin alternates strictly, so a 16-request trace splits 8/8.
        assert system.requests_per_replica == [8, 8]

    def test_power_of_two_seed_changes_sampling(self):
        picks = {}
        for seed in (0, 1):
            router = PowerOfTwoChoicesRouter(seed=seed)
            system = build_two_replicas()
            picks[seed] = [router.select(None, system.replicas, 0.0) for _ in range(32)]
        assert picks[0] != picks[1]


class TestRouterBalancing:
    def test_least_kv_prefers_emptier_replica(self):
        system = build_two_replicas(router="least-kv")
        # Load replica 0 by running a burst through it directly.
        busy = system.replicas[0]
        trace = generate_trace("sharegpt", 50.0, 8, seed=1)
        for idx, entry in enumerate(list(trace)[:4]):
            unit = busy.units[0]
            from repro.sim.request import Request

            req = Request(idx + 1000, entry.arrival_time, entry.prompt_tokens, entry.output_tokens)
            unit.enqueue(req, 0.0)
            it = unit.next_iteration(0.0)
            assert it is not None
        assert replica_kv_utilization(system.replicas[0]) > 0.0
        router = LeastKVLoadRouter()
        assert router.select(None, system.replicas, 0.0) == 1

    def test_power_of_two_never_exceeds_capacity(self):
        """Property test: under power-of-two routing at a saturating rate, no
        device of any replica ever reports utilization above 1.0, and the
        block managers never overcommit."""
        system = build_two_replicas(router="power-of-two", seed=3)
        trace = generate_trace("sharegpt", 40.0, 64, seed=3)
        result = run_system(system, trace)
        assert result.summary.num_finished > 0
        for replica in system.replicas:
            for unit in replica.units:
                for device, util in unit.kv_utilization().items():
                    assert 0.0 <= util <= 1.0, f"{device} overcommitted: {util}"
        # The recorder's cache_usage series must stay within [0, 1] too.
        for key in result.recorder.keys("cache_usage"):
            assert all(0.0 <= v <= 1.0 for _, v in result.recorder.raw("cache_usage", key))

    def test_recorder_keys_disambiguate_replicas(self):
        """Same-blueprint replicas must not merge their device time series."""
        system = build_two_replicas(router="round-robin")
        trace = generate_trace("sharegpt", 10.0, 16, seed=0)
        result = run_system(system, trace)
        keys = result.recorder.keys("cache_usage")
        assert keys, "expected cache_usage series"
        assert all(k.startswith(("r0/", "r1/")) for k in keys)
        assert any(k.startswith("r0/") for k in keys)
        assert any(k.startswith("r1/") for k in keys)


class TestEndToEnd:
    def test_two_replicas_beat_one_at_high_rate(self):
        """Data parallelism must relieve a saturated deployment."""
        common = dict(
            model="llama-13b",
            system="static-tp",
            dataset="sharegpt",
            request_rate=16.0,
            num_requests=48,
            cluster_kind="small",
            seed=0,
        )
        single = quick_serve(num_replicas=1, **common)
        double = quick_serve(num_replicas=2, router="round-robin", **common)
        assert double.summary.mean_normalized_latency < single.summary.mean_normalized_latency
        assert double.summary.num_finished >= single.summary.num_finished

    @pytest.mark.parametrize("system_name", ["hetis", "splitwise", "hexgen"])
    def test_every_system_runs_replicated(self, system_name):
        result = quick_serve(
            model="llama-13b",
            system=system_name,
            dataset="sharegpt",
            request_rate=8.0,
            num_requests=16,
            cluster_kind="small",
            num_replicas=2,
            router="least-kv",
            seed=0,
        )
        assert result.summary.num_finished == 16

    def test_shared_cluster_rejected(self):
        with pytest.raises(ValueError, match="cluster_kind"):
            quick_serve(cluster=build_cluster("small"), num_replicas=2)
