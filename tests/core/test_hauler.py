"""Tests for the Hauler (migration planning + pricing)."""

import pytest

from repro.core.hauler import Hauler
from repro.hardware.cluster import paper_cluster
from repro.models.spec import get_model_spec


@pytest.fixture
def setup():
    cluster = paper_cluster()
    model = get_model_spec("llama-70b")
    hauler = Hauler(cluster, model, interference_factor=0.1)
    # device_host map including the aggregate-primary pseudo device (-1).
    hosts = {d.device_id: d.host_id for d in cluster.devices}
    hosts[-1] = 0
    return cluster, model, hauler, hosts


def test_interference_factor_validated(setup):
    cluster, model, *_ = setup
    with pytest.raises(ValueError):
        Hauler(cluster, model, interference_factor=1.5)


def test_no_change_no_cost(setup):
    _, _, hauler, hosts = setup
    report = hauler.migrate(1, 1000, {-1: 64}, {-1: 64}, hosts)
    assert report.is_empty
    assert report.transfer_seconds == 0.0
    assert report.blocking_seconds == 0.0


def test_partial_move_priced_and_counted(setup):
    _, model, hauler, hosts = setup
    report = hauler.migrate(1, 2000, {-1: 64}, {-1: 32, 8: 32}, hosts)
    assert not report.is_empty
    assert report.moved_bytes == pytest.approx(32 * 2000 * model.kv_bytes_per_token() / 64)
    assert report.transfer_seconds > 0
    assert report.blocking_seconds == pytest.approx(report.transfer_seconds * 0.1)
    assert hauler.total_migrations == 1
    assert hauler.total_bytes_moved == pytest.approx(report.moved_bytes)


def test_longer_context_costs_more(setup):
    _, _, hauler, hosts = setup
    short = hauler.migrate(1, 500, {-1: 64}, {-1: 32, 8: 32}, hosts)
    long = hauler.migrate(2, 5000, {-1: 64}, {-1: 32, 8: 32}, hosts)
    assert long.transfer_seconds > short.transfer_seconds


def test_parallel_sources_overlap(setup):
    _, _, hauler, hosts = setup
    # Two donors feeding one receiver: transfers from distinct sources overlap,
    # so the total is the max of the two, not the sum.
    report = hauler.migrate(1, 2000, {4: 32, 5: 32}, {8: 64}, hosts)
    single = hauler.migrate(2, 2000, {4: 32}, {8: 32, 4: 0}, hosts)
    assert report.transfer_seconds == pytest.approx(single.transfer_seconds, rel=0.2)


def test_zero_interference_fully_hidden(setup):
    cluster, model, _, hosts = setup
    hauler = Hauler(cluster, model, interference_factor=0.0)
    report = hauler.migrate(1, 1000, {-1: 64}, {8: 64}, hosts)
    assert report.blocking_seconds == 0.0
    assert report.transfer_seconds > 0.0
