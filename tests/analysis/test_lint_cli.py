"""`repro lint` end-to-end: the CLI surface and the repo-wide gate.

Includes the acceptance check the CI lint job relies on: a newly introduced
DET001 violation (written to a temp file) makes `repro lint` exit non-zero,
while `repro lint src/` stays clean modulo the checked-in baseline.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_cli(args):
    out = io.StringIO()
    code = main(args, out=out)
    return code, out.getvalue()


@pytest.fixture
def repo_cwd(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)


BAD_SIM_MODULE = "import time\n\n\ndef now():\n    return time.time()\n"


def test_lint_src_is_clean_modulo_checked_in_baseline(repo_cwd):
    code, text = run_cli(["lint", "src"])
    assert code == 0, text
    assert "0 new finding(s)" in text
    assert "stale" not in text


def test_checked_in_baseline_entries_all_match_and_are_justified(repo_cwd):
    data = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
    assert data["version"] == 1
    for entry in data["entries"]:
        assert entry["justification"].strip(), entry
    code, text = run_cli(["lint", "src", "--format", "json"])
    assert code == 0
    report = json.loads(text)
    assert report["ok"] is True
    assert report["stale_baseline"] == []
    # Every baseline entry is still live (matched by a real finding).
    assert len(report["baselined"]) >= len(data["entries"])


def test_new_det001_violation_fails_the_gate(tmp_path, monkeypatch):
    """The blocking-step demonstration: a fresh wall-clock call exits 1."""
    bad = tmp_path / "sim" / "bad.py"
    bad.parent.mkdir()
    bad.write_text(BAD_SIM_MODULE)
    monkeypatch.chdir(tmp_path)  # no baseline file here
    code, text = run_cli(["lint", str(bad)])
    assert code == 1
    assert "DET001" in text and "time.time" in text


def test_baseline_does_not_excuse_new_findings_elsewhere(tmp_path, monkeypatch):
    bad = tmp_path / "sim" / "bad.py"
    bad.parent.mkdir()
    bad.write_text(BAD_SIM_MODULE)
    monkeypatch.chdir(REPO_ROOT)
    # The checked-in baseline is loaded, but the temp file's finding is new.
    code, text = run_cli(["lint", str(bad)])
    assert code == 1
    assert "DET001" in text


def test_lint_json_format(tmp_path, monkeypatch):
    bad = tmp_path / "sim" / "bad.py"
    bad.parent.mkdir()
    bad.write_text(BAD_SIM_MODULE)
    monkeypatch.chdir(tmp_path)
    code, text = run_cli(["lint", str(bad), "--format", "json"])
    assert code == 1
    report = json.loads(text)
    assert report["ok"] is False
    assert report["files_checked"] == 1
    assert [f["code"] for f in report["findings"]] == ["DET001"]
    assert report["findings"][0]["line"] == 5


def test_lint_clean_tree_exits_zero(tmp_path, monkeypatch):
    good = tmp_path / "sim" / "good.py"
    good.parent.mkdir()
    good.write_text("def f(clock):\n    return clock.now\n")
    monkeypatch.chdir(tmp_path)
    code, text = run_cli(["lint", str(tmp_path)])
    assert code == 0
    assert "0 new finding(s)" in text


def test_write_baseline_grandfathers_current_findings(tmp_path, monkeypatch):
    bad = tmp_path / "sim" / "bad.py"
    bad.parent.mkdir()
    bad.write_text(BAD_SIM_MODULE)
    monkeypatch.chdir(tmp_path)
    code, text = run_cli(["lint", "sim", "--write-baseline"])
    assert code == 0
    baseline_path = tmp_path / "lint-baseline.json"
    assert baseline_path.exists()
    entries = json.loads(baseline_path.read_text())["entries"]
    assert len(entries) == 1 and entries[0]["code"] == "DET001"
    assert "TODO" in entries[0]["justification"]
    # The grandfathered finding no longer fails the gate...
    code, text = run_cli(["lint", "sim"])
    assert code == 0
    assert "1 baselined" in text
    # ...but fixing it marks the entry stale (warned, not fatal).
    bad.write_text("def now(clock):\n    return clock\n")
    code, text = run_cli(["lint", "sim"])
    assert code == 0
    assert "stale baseline entry" in text


def test_no_baseline_flag_reports_grandfathered_findings(tmp_path, monkeypatch):
    bad = tmp_path / "sim" / "bad.py"
    bad.parent.mkdir()
    bad.write_text(BAD_SIM_MODULE)
    monkeypatch.chdir(tmp_path)
    run_cli(["lint", "sim", "--write-baseline"])
    code, _ = run_cli(["lint", "sim"])
    assert code == 0
    code, text = run_cli(["lint", "sim", "--no-baseline"])
    assert code == 1
    assert "DET001" in text


def test_missing_explicit_baseline_is_an_error(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    with pytest.raises(SystemExit, match="does not exist"):
        run_cli(["lint", str(tmp_path), "--baseline", "nope.json"])


def test_list_rules_names_every_code(repo_cwd):
    code, text = run_cli(["lint", "--list-rules"])
    assert code == 0
    for rule_code in ("DET001", "DET002", "DET003", "SPEC001", "SPEC002", "FLT001"):
        assert rule_code in text
