"""Fixture-snippet suite: one good/bad pair per lint rule code.

Each case lints an inline snippet through :func:`repro.analysis.lint_source`
with an explicit scope, so the suite exercises exactly what a rule flags --
and, just as deliberately, what it must leave alone.
"""

from __future__ import annotations

import pytest

from repro.analysis import DETERMINISM_SCOPES, LINT_RULES, lint_source

SIM_SCOPE = frozenset({"src", "repro", "sim"})
UNSCOPED = frozenset({"src", "repro", "experiments"})


def codes(source: str, scope=SIM_SCOPE):
    findings = lint_source(source, "src/repro/sim/snippet.py", scope_parts=scope)
    return [f.code for f in findings]


# --------------------------------------------------------------------- DET001


DET001_BAD = """
import time
import random
import numpy as np
from datetime import datetime


def tick():
    a = time.time()
    b = datetime.now()
    c = random.random()
    d = np.random.default_rng()
    e = np.random.rand(3)
    return a, b, c, d, e
"""

DET001_GOOD = """
import numpy as np
from repro.utils.rng import make_rng


def tick(now, seed):
    rng = np.random.default_rng(seed)
    other = make_rng(seed)
    draw = rng.random()          # Generator method, not the random module
    spawned = np.random.default_rng(rng.integers(2**31))
    return now, draw, other, spawned
"""


def test_det001_flags_wall_clock_and_unseeded_entropy():
    found = codes(DET001_BAD)
    assert found.count("DET001") == 5
    assert set(found) == {"DET001"}


def test_det001_clean_on_seeded_generators():
    assert codes(DET001_GOOD) == []


def test_det001_ignores_unimported_name_collisions():
    # A local object that merely shares a module's name must not match.
    source = "def f(random, time):\n    return random.random() + time.time()\n"
    assert codes(source) == []


def test_det001_tracks_from_imports_and_aliases():
    source = (
        "from time import time as now\n"
        "import numpy.random as npr\n"
        "def f():\n"
        "    return now(), npr.rand()\n"
    )
    assert codes(source) == ["DET001", "DET001"]


def test_det001_out_of_scope_directory_is_exempt():
    assert codes(DET001_BAD, scope=UNSCOPED) == []


# --------------------------------------------------------------------- DET002


DET002_BAD = """
def f(xs, ys):
    for x in set(xs):           # direct iteration
        print(x)
    a = list({1, 2, 3})         # materializer
    b = [y for y in frozenset(ys) | {4}]
    pending = set(xs) - set(ys)
    for p in pending:           # tainted local variable
        print(p)
    c = tuple(pending.union(ys))
    return a, b, c
"""

DET002_GOOD = """
def f(xs, ys):
    for x in sorted(set(xs)):   # sorted() normalizes the order
        print(x)
    if 3 in set(ys):            # membership is order-free
        pass
    dedup = {y * 2 for y in set(ys)}  # set-to-set stays order-free
    pending = set(xs)
    pending = sorted(pending)   # reassignment clears the taint
    for p in pending:
        print(p)
    return len(set(xs)) + sum(1 for _ in xs)
"""


def test_det002_flags_set_iteration():
    found = codes(DET002_BAD)
    assert found.count("DET002") == 5
    assert set(found) == {"DET002"}


def test_det002_clean_on_sorted_membership_and_set_results():
    assert codes(DET002_GOOD) == []


def test_det002_out_of_scope_directory_is_exempt():
    assert codes(DET002_BAD, scope=UNSCOPED) == []


# --------------------------------------------------------------------- DET003


DET003_BAD = """
def f(objs, a, b):
    ordered = sorted(objs, key=id)
    worst = max(objs, key=lambda o: (id(o), o))
    payload = hash(id(a))
    return ordered, worst, payload, id(a) < id(b)
"""

DET003_GOOD = """
def f(objs, a, b):
    by_name = sorted(objs, key=lambda o: o.name)
    cache = {}
    cache[id(a)] = 1            # identity as a plain dict key is fine
    same = id(a) == id(b)       # equality of ids is identity, deterministic
    return by_name, cache, same
"""


def test_det003_flags_identity_ordering_and_hashing():
    found = codes(DET003_BAD)
    assert found.count("DET003") == 4
    assert set(found) == {"DET003"}


def test_det003_clean_on_identity_dict_keys():
    assert codes(DET003_GOOD) == []


# --------------------------------------------------------------------- SPEC001


SPEC001_BAD = """
from dataclasses import dataclass


@dataclass
class BadSpec:
    name: str = "x"
    hidden_knob: int = 3

    def to_dict(self):
        return {"name": self.name}

    @classmethod
    def from_dict(cls, data):
        return cls(name=data.get("name", "x"))
"""

SPEC001_GOOD = """
from dataclasses import dataclass, field, asdict
from typing import ClassVar


@dataclass(frozen=True)
class GoodSpec:
    KNOWN: ClassVar[int] = 1
    name: str = "x"
    knob: int = 3
    _cache: dict = field(default_factory=dict)

    def to_dict(self):
        return {"name": self.name, "knob": self.knob}

    @classmethod
    def from_dict(cls, data):
        return cls(name=data.get("name", "x"), knob=data.get("knob", 3))


@dataclass(frozen=True)
class AsdictSpec:
    knob: int = 0

    def to_dict(self):
        return asdict(self)


@dataclass
class PlainRecord:
    value: int = 0
"""


def test_spec001_flags_unfrozen_and_dropped_fields():
    findings = lint_source(SPEC001_BAD, "specs.py", scope_parts=frozenset())
    messages = [f.message for f in findings]
    assert [f.code for f in findings] == ["SPEC001"] * 3
    assert any("not frozen=True" in m for m in messages)
    assert sum("hidden_knob" in m and "to_dict" in m for m in messages) == 1
    assert sum("hidden_knob" in m and "from_dict" in m for m in messages) == 1


def test_spec001_clean_on_frozen_covered_and_delegating_specs():
    assert lint_source(SPEC001_GOOD, "specs.py", scope_parts=frozenset()) == []


# --------------------------------------------------------------------- SPEC002


SPEC002_BAD = """
from repro.registry import Registry

ROUTERS = Registry("router")
AUTOSCALERS = Registry("autoscaler")
SYSTEMS = Registry("system")
TASK_KINDS = Registry("task kind")

ROUTERS.register("no-seed", lambda: object())


@AUTOSCALERS.register("needs-arg")
class NeedsArg:
    def __init__(self, target):
        self.target = target


@SYSTEMS.register("bad-system")
def build_bad(cluster):
    return cluster


def no_payload():
    return None


TASK_KINDS.register("no-payload", no_payload)
"""

SPEC002_GOOD = """
from dataclasses import dataclass
from repro.registry import Registry

ROUTERS = Registry("router")
AUTOSCALERS = Registry("autoscaler")
SYSTEMS = Registry("system")
TASK_KINDS = Registry("task kind")
DATASETS = Registry("dataset")

ROUTERS.register("seeded", lambda seed: object())


@AUTOSCALERS.register("all-defaults")
class AllDefaults:
    def __init__(self, interval=5.0, target=0.8):
        self.interval = interval


@AUTOSCALERS.register("dataclass-policy")
@dataclass
class DataclassPolicy:
    interval: float = 5.0


@SYSTEMS.register("good-system")
def build_good(cluster, model, dataset="sharegpt", limits=None, **kwargs):
    return cluster


TASK_KINDS.register("payload", lambda payload: payload)
DATASETS.register("not-callable", object())
"""


def test_spec002_flags_contract_drift():
    findings = lint_source(SPEC002_BAD, "plugins.py", scope_parts=frozenset())
    assert all(f.code == "SPEC002" for f in findings)
    names = [f.message for f in findings]
    assert any("'no-seed'" in m for m in names)
    assert any("'needs-arg'" in m and "target" in m for m in names)
    assert any("'bad-system'" in m for m in names)
    assert any("'no-payload'" in m for m in names)


def test_spec002_clean_on_conforming_plugins():
    assert lint_source(SPEC002_GOOD, "plugins.py", scope_parts=frozenset()) == []


# --------------------------------------------------------------------- FLT001


FLT001_BAD = """
def f(x, y, total, n):
    a = x == 0.5
    b = (total / n) != y
    c = float(x) == y
    return a, b, c
"""

FLT001_GOOD = """
import math


def f(x, y, count):
    a = count == 0              # integer sentinel
    b = x <= 0.5                # ordered comparison is tolerance-free anyway
    c = math.isclose(x, y)
    return a, b, c
"""


def test_flt001_flags_float_equality():
    found = codes(FLT001_BAD, scope=frozenset({"src", "repro", "perf"}))
    assert found.count("FLT001") == 3
    assert set(found) == {"FLT001"}


def test_flt001_clean_on_tolerant_comparisons():
    assert codes(FLT001_GOOD, scope=frozenset({"src", "repro", "perf"})) == []


def test_flt001_out_of_scope_directory_is_exempt():
    assert codes(FLT001_BAD, scope=frozenset({"src", "repro", "core"})) == []


# --------------------------------------------------------------------- meta


def test_every_registered_rule_code_has_a_bad_fixture():
    """Each shipped rule code is exercised in failing form above."""
    exercised = {
        "DET001": codes(DET001_BAD),
        "DET002": codes(DET002_BAD),
        "DET003": codes(DET003_BAD),
        "SPEC001": [f.code for f in lint_source(SPEC001_BAD, "s.py", scope_parts=frozenset())],
        "SPEC002": [f.code for f in lint_source(SPEC002_BAD, "p.py", scope_parts=frozenset())],
        "FLT001": codes(FLT001_BAD, scope=frozenset({"perf"})),
    }
    for code in LINT_RULES.available():
        assert code in exercised, f"no fixture for rule {code}"
        assert code in exercised[code], f"bad fixture for {code} does not trigger it"


def test_syntax_errors_surface_as_findings():
    findings = lint_source("def broken(:\n", "src/repro/sim/x.py")
    assert [f.code for f in findings] == ["SYNTAX"]


def test_determinism_scope_constant_matches_issue():
    assert DETERMINISM_SCOPES == {"sim", "core", "kvcache", "solvers"}


@pytest.mark.parametrize("code", ["DET001", "DET002", "DET003", "SPEC001", "SPEC002", "FLT001"])
def test_rule_registry_lists_each_code_with_help(code):
    entry = LINT_RULES.entry(code)
    assert entry.help
    assert entry.value.code == code
