"""Suppression (`# repro: noqa[...]`) and baseline mechanics."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline, BaselineEntry, BaselineError, Finding, lint_paths, lint_source

SIM_SCOPE = frozenset({"src", "repro", "sim"})


# ----------------------------------------------------------------- suppression


def test_noqa_bare_suppresses_every_code_on_the_line():
    source = "import time\n\ndef f():\n    return time.time()  # repro: noqa\n"
    assert lint_source(source, "x.py", scope_parts=SIM_SCOPE) == []


def test_noqa_with_code_suppresses_only_that_code():
    source = (
        "import time\n"
        "def f(x):\n"
        "    return time.time() == 0.5  # repro: noqa[FLT001]\n"
    )
    findings = lint_source(source, "x.py", scope_parts=SIM_SCOPE)
    assert [f.code for f in findings] == ["DET001"]


def test_noqa_with_multiple_codes_and_case_insensitivity():
    source = (
        "import time\n"
        "def f(x):\n"
        "    return time.time() == 0.5  # REPRO: NoQA[det001, flt001]\n"
    )
    assert lint_source(source, "x.py", scope_parts=SIM_SCOPE) == []


def test_noqa_on_other_line_does_not_suppress():
    source = (
        "import time  # repro: noqa[DET001]\n"
        "def f():\n"
        "    return time.time()\n"
    )
    findings = lint_source(source, "x.py", scope_parts=SIM_SCOPE)
    assert [f.code for f in findings] == ["DET001"]


def test_noqa_with_wrong_code_does_not_suppress():
    source = "import time\ndef f():\n    return time.time()  # repro: noqa[DET999]\n"
    findings = lint_source(source, "x.py", scope_parts=SIM_SCOPE)
    assert [f.code for f in findings] == ["DET001"]


def test_noqa_inside_string_literal_is_not_a_suppression():
    source = (
        "import time\n"
        "def f():\n"
        '    note = "# repro: noqa"\n'
        "    return time.time(), note\n"
    )
    findings = lint_source(source, "x.py", scope_parts=SIM_SCOPE)
    assert [f.code for f in findings] == ["DET001"]


# -------------------------------------------------------------------- baseline


def _finding(code="DET001", path="src/a.py", message="call to time.time()"):
    return Finding(path=path, line=10, col=3, code=code, message=message)


def test_baseline_split_partitions_new_old_and_stale():
    baseline = Baseline(
        [
            BaselineEntry("DET001", "src/a.py", "call to time.time()", "known"),
            BaselineEntry("FLT001", "src/gone.py", "old message", "fixed long ago"),
        ]
    )
    known = _finding()
    fresh = _finding(code="DET002", message="set iteration")
    new, old, stale = baseline.split([known, fresh])
    assert new == [fresh]
    assert old == [known]
    assert [e.path for e in stale] == ["src/gone.py"]


def test_baseline_matches_on_identity_not_line_numbers():
    baseline = Baseline(
        [BaselineEntry("DET001", "src/a.py", "call to time.time()", "known")]
    )
    moved = Finding(path="src/a.py", line=999, col=1, code="DET001", message="call to time.time()")
    new, old, stale = baseline.split([moved])
    assert new == [] and old == [moved] and stale == []


def test_baseline_round_trips_through_disk(tmp_path):
    baseline = Baseline.from_findings([_finding()], justification="because")
    path = tmp_path / "baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.entries == baseline.entries


def test_baseline_rejects_missing_justification(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {"code": "DET001", "path": "a.py", "message": "m", "justification": "  "}
                ],
            }
        )
    )
    with pytest.raises(BaselineError, match="justification"):
        Baseline.load(path)


def test_baseline_rejects_unknown_version_and_bad_shape(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(BaselineError, match="version"):
        Baseline.load(path)
    path.write_text(json.dumps(["not", "a", "mapping"]))
    with pytest.raises(BaselineError):
        Baseline.load(path)


def test_lint_paths_applies_baseline(tmp_path, monkeypatch):
    bad = tmp_path / "sim" / "bad.py"
    bad.parent.mkdir()
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    monkeypatch.chdir(tmp_path)
    unbaselined = lint_paths(["sim"])
    assert [f.code for f in unbaselined.findings] == ["DET001"]
    baseline = Baseline.from_findings(unbaselined.findings, justification="grandfathered")
    report = lint_paths(["sim"], baseline=baseline)
    assert report.ok
    assert [f.code for f in report.baselined] == ["DET001"]
    assert report.stale_baseline == []
