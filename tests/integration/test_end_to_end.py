"""Cross-module integration tests: full serving runs with invariant checks.

These exercise the whole stack -- parallel planning, head-wise dispatching,
re-dispatching, migration, preemption, and metrics -- under several workloads
and verify global invariants that individual unit tests cannot see.
"""

import pytest

from repro.api import build_cluster, build_system, run_system
from repro.core.system import HetisSystem
from repro.sim.engine import Engine

pytestmark = pytest.mark.slow
from repro.workloads.trace import generate_trace


@pytest.mark.parametrize("dataset", ["sharegpt", "humaneval", "longbench"])
def test_hetis_serves_every_dataset(dataset):
    cluster = build_cluster("paper")
    system = build_system("hetis", cluster, "llama-13b", dataset=dataset)
    rate = {"sharegpt": 6.0, "humaneval": 20.0, "longbench": 2.0}[dataset]
    trace = generate_trace(dataset, rate, 20, seed=0)
    result = run_system(system, trace)
    assert result.summary.num_finished == 20
    assert result.num_dropped == 0


@pytest.mark.parametrize("system_name", ["hetis", "hexgen", "splitwise"])
def test_every_request_gets_exactly_its_output_tokens(system_name):
    cluster = build_cluster("paper")
    system = build_system(system_name, cluster, "llama-13b", dataset="sharegpt")
    trace = generate_trace("sharegpt", 6.0, 25, seed=4)
    result = run_system(system, trace)
    expected = {i: e.output_tokens for i, e in enumerate(trace)}
    assert result.summary.num_finished == 25
    for record in result.metrics.records:
        assert record.output_tokens == expected[record.request_id]
        assert record.finish_time > record.arrival_time
        assert record.ttft <= record.finish_time - record.arrival_time + 1e-9


def test_hetis_cache_state_empty_after_drain():
    cluster = build_cluster("paper")
    system = build_system("hetis", cluster, "llama-13b", dataset="sharegpt")
    trace = generate_trace("sharegpt", 6.0, 20, seed=1)
    run_system(system, trace)
    assert isinstance(system, HetisSystem)
    for unit in system.units:
        assert unit.num_running == 0
        assert unit.num_waiting == 0
        assert all(v == 0.0 for v in unit.kv_utilization().values())
        assert all(v == 0.0 for v in unit.head_counts().values())


def test_gqa_model_end_to_end_on_hetis():
    """Llama-70B exercises the GQA head-group constraint (r=8) end to end."""
    cluster = build_cluster("paper")
    system = build_system("hetis", cluster, "llama-70b", dataset="humaneval")
    trace = generate_trace("humaneval", 4.0, 12, seed=2)
    result = run_system(system, trace)
    assert result.summary.num_finished == 12


def test_throughput_ordering_at_high_load():
    """At a rate past the baselines' knee Hetis sustains the lowest latency,
    which is the mechanism behind the paper's 2.25x / 1.33x throughput claims."""
    latencies = {}
    for system_name in ("hetis", "hexgen", "splitwise"):
        cluster = build_cluster("paper")
        system = build_system(system_name, cluster, "opt-30b", dataset="sharegpt")
        trace = generate_trace("sharegpt", 8.0, 40, seed=3)
        latencies[system_name] = run_system(system, trace).summary.mean_normalized_latency
    assert latencies["hetis"] < latencies["hexgen"]
    assert latencies["hetis"] < latencies["splitwise"]


def test_long_context_workload_triggers_memory_management_without_loss():
    """LongBench prompts on a memory-tight model exercise preemption/re-dispatch."""
    cluster = build_cluster("small")
    system = build_system("static-tp", cluster, "llama-13b")
    trace = generate_trace("longbench", 1.5, 15, seed=5)
    result = Engine(system).run(trace)
    finished_plus_dropped = result.summary.num_finished + result.num_dropped
    assert finished_plus_dropped == 15
    assert result.summary.num_finished >= 13
