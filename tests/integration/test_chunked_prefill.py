"""Integration tests for the chunked-prefill execution model.

The LongBench divergence this fixes: multi-thousand-token summarization
prompts used to prefill in one monolithic iteration, stalling every co-batched
decode request for the whole prefill.  With chunking on, no iteration carries
more prefill tokens than the budget, so decode waits at most one chunk.
"""

from repro.api import build_cluster, build_system, quick_serve, run_system
from repro.sim.scheduler import SchedulerLimits
from repro.workloads.trace import generate_trace

CHUNK = 512
LIMITS = SchedulerLimits(
    max_prefill_tokens_per_iteration=2048, prefill_chunk_tokens=CHUNK
)


def record_prefill_loads(system):
    """Spy on every unit: log each planned iteration's prefill token load."""
    loads = []
    for unit in system.units:
        original = unit.next_iteration

        def spy(now, _orig=original):
            iteration = _orig(now)
            if iteration is not None:
                # At planning time a completing request has not advanced yet,
                # so remaining_prefill_tokens is exactly its share of this
                # iteration's prefill work.
                load = sum(r.remaining_prefill_tokens for r in iteration.prefill_requests)
                load += sum(c.new_tokens for c in iteration.partial_prefills)
                loads.append((iteration, load))
            return iteration

        unit.next_iteration = spy
    return loads


class TestLongBenchChunking:
    def run_longbench(self, limits, system_name="static-tp", n=12, rate=4.0):
        cluster = build_cluster("small")
        system = build_system(system_name, cluster, "llama-13b", limits=limits)
        loads = record_prefill_loads(system)
        trace = generate_trace("longbench", rate, n, seed=0)
        result = run_system(system, trace)
        return result, loads

    def test_budget_hard_enforced_with_chunking(self):
        result, loads = self.run_longbench(LIMITS)
        assert result.summary.num_finished == 12
        prefill_loads = [load for _, load in loads if load]
        assert prefill_loads, "no prefill iterations observed"
        assert max(prefill_loads) <= LIMITS.max_prefill_tokens_per_iteration

    def test_monolithic_prefill_violates_budget(self):
        # The divergence being fixed: without chunking, LongBench prompts blow
        # straight through the per-iteration token budget.
        monolithic = SchedulerLimits(max_prefill_tokens_per_iteration=2048)
        result, loads = self.run_longbench(monolithic)
        assert result.summary.num_finished == 12
        assert max(load for _, load in loads) > monolithic.max_prefill_tokens_per_iteration

    def test_decode_not_starved_behind_long_prefill(self):
        # With chunking on, decode requests ride along with prefill chunks
        # instead of waiting out a monolithic long-prompt prefill.
        _, loads = self.run_longbench(LIMITS)
        mixed = [
            it for it, _ in loads
            if it.decode_requests and (it.partial_prefills or it.prefill_requests)
        ]
        assert mixed, "decode never interleaved with prefill chunks"
        # And no decode request ever sits behind more prefill work than the
        # iteration budget allows.
        for it, load in loads:
            if it.decode_requests:
                assert load <= LIMITS.max_prefill_tokens_per_iteration

    def test_chunking_shrinks_worst_decode_stall(self):
        # One long prompt lands while short requests are decoding: the longest
        # inter-token gap of the short requests must shrink under chunking,
        # because decode never waits out a monolithic 12k-token prefill.
        def worst_gap(limits):
            cluster = build_cluster("small")
            system = build_system("static-tp", cluster, "llama-13b", limits=limits)
            finished = {}
            original = system.on_iteration

            def spy(unit, iteration, outcome, now, recorder):
                for req in outcome.finished:
                    finished[req.request_id] = req
                return original(unit, iteration, outcome, now, recorder)

            system.on_iteration = spy
            trace = generate_trace("sharegpt", 20.0, 8, seed=3)
            # Splice in one LongBench-sized prompt early in the trace.
            entries = list(trace)
            entries[1] = entries[1].__class__(
                arrival_time=entries[1].arrival_time,
                prompt_tokens=12000,
                output_tokens=entries[1].output_tokens,
            )
            result = run_system(system, trace.__class__(entries=entries))
            assert result.summary.num_finished == 8
            gaps = []
            for req in finished.values():
                if req.prompt_tokens < 12000 and len(req.token_times) > 1:
                    gaps += [
                        b - a for a, b in zip(req.token_times, req.token_times[1:])
                    ]
            return max(gaps)

        chunked = worst_gap(LIMITS)
        monolithic = worst_gap(SchedulerLimits(max_prefill_tokens_per_iteration=2048))
        assert chunked < monolithic

    def test_all_systems_complete_longbench_with_chunking(self):
        for name in ("hetis", "hexgen", "splitwise", "static-tp"):
            result = quick_serve(
                model="llama-13b",
                system=name,
                dataset="longbench",
                request_rate=5.0,
                num_requests=8,
                seed=0,
                cluster_kind="small" if name != "splitwise" else "paper",
                prefill_chunk_tokens=CHUNK,
            )
            assert result.summary.num_finished == 8, name
            assert result.summary.p95_ttft > 0

    def test_splitwise_hands_off_once_after_full_prefill(self):
        cluster = build_cluster("paper")
        system = build_system(
            "splitwise", cluster, "llama-13b", prefill_chunk_tokens=CHUNK
        )
        trace = generate_trace("longbench", 4.0, 6, seed=0)
        result = run_system(system, trace)
        assert result.summary.num_finished == 6
        # One migration per request, fired only when its prefill completed.
        assert system.num_migrations == 6
