"""Tests for the simulation-backed experiment drivers (Figs. 8-16).

These use deliberately small request counts so the suite stays fast; the
benchmarks in ``benchmarks/`` run the full-size versions.
"""

import pytest

from repro.experiments import ablation, cache_space, e2e, fig14, fig15, fig16

pytestmark = pytest.mark.slow


class TestE2E:
    def test_run_serving_point_fields(self):
        point = e2e.run_serving("hexgen", "llama-13b", "sharegpt", 6.0, num_requests=16, seed=0)
        assert point.num_finished == 16
        assert point.normalized_latency > 0
        assert point.p95_ttft > 0
        assert point.available_cache_gb > 0

    def test_rate_sweep_latency_increases_with_rate(self):
        sweeps = e2e.run_rate_sweep(
            "llama-13b", "sharegpt", systems=("hexgen",), rates=(2.0, 30.0), num_requests=24
        )
        sweep = sweeps["hexgen"]
        assert sweep.latencies[1] > sweep.latencies[0]
        assert sweep.max_rate_under(latency_slo=sweep.latencies[0] * 1.01) >= 2.0

    def test_hetis_beats_baselines_at_moderate_load(self):
        """The headline Fig. 8 ordering on one representative point."""
        points = {
            system: e2e.run_serving(system, "llama-13b", "sharegpt", 9.0, num_requests=40, seed=1)
            for system in ("hetis", "hexgen", "splitwise")
        }
        assert points["hetis"].normalized_latency < points["hexgen"].normalized_latency
        assert points["hetis"].normalized_latency < points["splitwise"].normalized_latency

    def test_paper_rate_grid_defined_for_all_panels(self):
        for model in ("llama-13b", "opt-30b", "llama-70b"):
            for dataset in ("sharegpt", "humaneval", "longbench"):
                assert len(e2e.PAPER_RATE_GRID[model][dataset]) >= 3

    def test_tail_latency_structure(self):
        out = e2e.run_tail_latency(
            model="llama-13b", datasets=("sharegpt",), systems=("hetis", "hexgen"), num_requests=20
        )
        assert set(out) == {"sharegpt"}
        assert set(out["sharegpt"]) == {"hetis", "hexgen"}
        assert out["sharegpt"]["hetis"].p95_tpot > 0


class TestCacheSpace:
    @pytest.fixture(scope="class")
    def cells(self):
        return cache_space.run_cache_space(
            models=("llama-13b", "llama-70b"), datasets=("sharegpt",), systems=("hetis", "hexgen", "splitwise")
        )

    def test_all_cells_present(self, cells):
        assert len(cells) == 2 * 1 * 3
        assert all(c.cache_gb > 0 for c in cells)

    def test_hetis_has_most_cache_space(self, cells):
        """Fig. 11: Hetis consistently provides the largest usable cache."""
        for model in ("llama-13b", "llama-70b"):
            assert cache_space.advantage_over(cells, model, "sharegpt", "hexgen") > 1.0
            assert cache_space.advantage_over(cells, model, "sharegpt", "splitwise") > 1.0


class TestFig14:
    def test_dynamic_usage_shape(self):
        result = fig14.run_dynamic_usage(max_requests=60)
        assert result.primary_key in result.head_counts
        assert len(result.worker_keys) == 2
        # The primary carries more load than either attention worker.
        assert result.peak_heads(result.primary_key) > max(
            result.peak_heads(k) for k in result.worker_keys
        )
        # Cache is actually used at some point.
        assert max(result.cache_usage[result.primary_key]) > 0.0


class TestFig15a:
    def test_redispatch_no_worse_than_lifo(self):
        benefit = fig15.run_redispatch_benefit(num_requests=40, request_rate=6.0)
        assert benefit.mean_improvement >= 0.95
        assert benefit.p95_improvement >= 0.9
        assert benefit.mean_latency_redispatch > 0


class TestFig16:
    def test_theta_sensitivity_flat_region(self):
        result = fig16.run_theta_sensitivity(
            datasets=("sharegpt",), thetas=(0.3, 0.5, 0.7), request_rate=6.0, num_requests=24
        )
        assert result.thetas == [0.3, 0.5, 0.7]
        # The paper finds the default within a ~10% band of the best setting.
        assert result.worst_ratio("sharegpt") < 1.3

    def test_profiling_error_resilience(self):
        result = fig16.run_profiling_error_sensitivity(
            error_levels=(0.2,), request_rate=6.0, num_requests=24
        )
        # Paper: at most ~6.9% inflation at +/-20% error; allow a wider band.
        assert result.max_inflation < 1.25


class TestAblations:
    def test_split_dimension_ordering(self):
        result = ablation.run_split_dimension_ablation()
        assert result.headwise_seconds < result.seqwise_seconds < result.batchwise_seconds

    def test_solver_ablation_lp_best(self):
        result = ablation.run_solver_ablation()
        assert result.greedy_gap >= 0.99
        assert result.proportional_gap >= 0.99

    def test_delta_ablation_monotone_pruning(self):
        result = ablation.run_delta_ablation(deltas=(0.0, 0.05, 0.3))
        assert result.num_attention_workers[0] == 0
        assert result.num_attention_workers == sorted(result.num_attention_workers)

    def test_dynamic_parallelism_beats_static(self):
        result = ablation.run_dynamic_parallelism_ablation(num_requests=30, request_rate=8.0)
        assert result.speedup > 1.0
