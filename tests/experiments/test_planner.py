"""Tests for the SLO-aware fleet planner.

Three load-bearing guarantees:

* **Optimality** -- on any grid with a feasible candidate, the planner's
  choice equals the exhaustive-enumeration optimum (cheapest feasible,
  attainment then index as tie-breaks), property-tested on seeded random
  grids with a synthetic oracle and verified once against the real simulator.
* **Pruning soundness** -- a pruned candidate is never evaluated and always
  costs strictly more than the chosen plan, so pruning can never hide a
  cheaper feasible deployment; and pruning must actually save evaluations.
* **Determinism** -- a fixed spec (seed included) yields a bit-identical
  :class:`PlanResult` across repeat runs and across ``jobs=1`` vs ``jobs=4``.
"""

import json

import pytest

from repro.config import ConfigError, DeploymentSpec
from repro.experiments.planner import (
    PLANNER_STRATEGIES,
    FleetPlanner,
    PlanCandidate,
    PlannerSpec,
    PlanResult,
    SimulatorOracle,
    fits_inventory,
    fleet_cost_per_hour,
    fleet_device_counts,
    load_planner,
    run_plan,
)
from repro.utils.rng import make_rng


BASE = DeploymentSpec.from_dict(
    {
        "model": "llama-13b",
        "system": {"name": "static-tp"},
        "cluster": {"kind": "a100:1"},
        "slo": {"ttft_s": 2.0, "tpot_s": 0.5},
        "workload": {"dataset": "sharegpt", "request_rate": 4.0, "num_requests": 5, "seed": 0},
    }
)


def planner_spec(**kwargs):
    merged = {
        "name": "test-plan",
        "deployment": BASE,
        "search": {"cluster.kind": ["t4:1", "rtx3090:1", "a100:1"]},
        "target_attainment": 0.9,
    }
    merged.update(kwargs)
    return PlannerSpec.from_dict(merged)


def synthetic_oracle(spec, attainments):
    """Score candidates from a precomputed table instead of simulating."""
    def key_of(overrides):
        return json.dumps(dict(overrides), sort_keys=True)

    table = {
        key_of(overrides): att
        for (overrides, _), att in zip(spec.expand(), attainments)
    }

    def oracle(points):
        return [
            {
                "slo_attainment": float(table[key_of(overrides)]),
                "goodput_rps": 1.0,
                "truncated": False,
            }
            for overrides, _ in points
        ]

    return oracle


def exhaustive_best(spec, attainments):
    """The brute-force optimum: cheapest feasible, then attainment, then index."""
    best = None
    for idx, (overrides, dspec) in enumerate(spec.expand()):
        att = attainments[idx]
        if att < spec.target_attainment:
            continue
        key = (fleet_cost_per_hour(dspec), -att, idx)
        if best is None or key < best[0]:
            best = (key, dict(overrides))
    return best


class TestFleetPricing:
    def test_cost_matches_catalog(self):
        assert fleet_cost_per_hour(BASE) == pytest.approx(3.00)
        two = BASE.with_overrides({"cluster.replicas": 2})
        assert fleet_cost_per_hour(two) == pytest.approx(6.00)
        hetero = BASE.with_overrides({"cluster.replica_kinds": ["a100:1", "rtx3090:2"]})
        assert fleet_cost_per_hour(hetero) == pytest.approx(3.00 + 2 * 0.85)

    def test_device_counts_sum_over_replicas(self):
        hetero = BASE.with_overrides({"cluster.replica_kinds": ["a100:1", "rtx3090:2"]})
        assert fleet_device_counts(hetero) == {"a100": 1, "rtx3090": 2}

    def test_fits_inventory_treats_missing_types_as_unavailable(self):
        assert fits_inventory(BASE, {"a100": 1})
        assert not fits_inventory(BASE, {"a100": 0})
        assert not fits_inventory(BASE, {"rtx3090": 8})  # no a100 listed


class TestPlannerSpec:
    def test_round_trip(self):
        spec = planner_spec(
            seed=7,
            budget=5,
            inventory={"a100": 2, "rtx3090": 4},
            description="round trip",
        )
        again = PlannerSpec.from_dict(spec.to_dict())
        assert again.to_dict() == spec.to_dict()
        assert again == spec

    def test_axes_preserve_order_and_values(self):
        spec = planner_spec(
            search={"cluster.kind": ["a100:1"], "workload.seed": [0, 1]}
        )
        assert spec.axes == {"cluster.kind": ["a100:1"], "workload.seed": [0, 1]}
        assert spec.num_points == 2
        assert len(spec.expand()) == 2

    def test_rejects_bad_target(self):
        for target in (0.0, 1.5, "high", True):
            with pytest.raises(ConfigError, match="target_attainment"):
                planner_spec(target_attainment=target)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ConfigError, match="planner.strategies"):
            planner_spec(strategies=["simulated-annealing"])

    def test_rejects_bad_budget_and_population(self):
        with pytest.raises(ConfigError, match="budget"):
            planner_spec(budget=0)
        with pytest.raises(ConfigError, match="population"):
            planner_spec(population=0)

    def test_rejects_unknown_inventory_gpu(self):
        with pytest.raises(ConfigError, match="unknown GPU type"):
            planner_spec(inventory={"h100": 8})
        with pytest.raises(ConfigError, match="inventory"):
            planner_spec(inventory={"a100": -1})

    def test_rejects_unknown_keys_and_bad_axes(self):
        with pytest.raises(ConfigError, match="unknown key"):
            PlannerSpec.from_dict({"name": "x", "deployment": BASE, "bogus": 1})
        with pytest.raises(ConfigError, match="has no values"):
            planner_spec(search={"workload.seed": []})
        # A bad dotted path fails at load time with the pointed override error.
        with pytest.raises(ConfigError, match="unknown section 'clusterx'"):
            planner_spec(search={"clusterx.replicas": [1, 2]})

    def test_from_config_shape(self, tmp_path):
        path = tmp_path / "plan.toml"
        path.write_text(
            "\n".join(
                [
                    "[planner]",
                    'target_attainment = 0.5',
                    "[planner.search]",
                    '"workload.seed" = [0, 1]',
                    "[deployment]",
                    'model = "llama-13b"',
                ]
            )
        )
        spec = load_planner(path)
        assert spec.name == "plan"  # file stem default
        assert spec.num_points == 2

    def test_from_config_rejects_misplaced_deployment(self):
        with pytest.raises(ConfigError, match="top-level \\[deployment\\]"):
            PlannerSpec.from_config(
                {"planner": {"deployment": {}}, "deployment": {"model": "llama-13b"}}
            )
        with pytest.raises(ConfigError, match="unknown top-level"):
            PlannerSpec.from_config({"planner": {}, "deployment": {}, "extra": 1})


class TestGreedyPruning:
    def test_finds_exhaustive_optimum_and_prunes(self):
        spec = planner_spec(
            search={"cluster.kind": ["t4:1", "rtx3090:1", "a100:1"]},
            target_attainment=0.9,
        )
        # t4 ($0.35) misses, rtx3090 ($0.85) meets, a100 ($3.00) would meet
        # but must be pruned, never evaluated.
        oracle = synthetic_oracle(spec, [0.5, 0.95, 1.0])
        result = FleetPlanner(spec, oracle=oracle).plan()
        assert result.best is not None
        assert result.best.overrides == {"cluster.kind": "rtx3090:1"}
        assert result.best.cost_per_hour == pytest.approx(0.85)
        assert result.num_evaluated == 2 < result.total_points
        assert result.num_pruned == 1
        (pruned,) = [c for c in result.candidates if c.pruned]
        assert not pruned.evaluated
        assert pruned.cost_per_hour > result.best.cost_per_hour

    def test_equal_cost_tier_is_evaluated_whole(self):
        """Tier granularity, not --jobs batches: both same-cost candidates run
        even when the first already meets the target."""
        spec = planner_spec(
            search={"workload.seed": [0, 1]},  # identical fleets, same $/hr
            target_attainment=0.5,
        )
        oracle = synthetic_oracle(spec, [0.9, 0.99])
        result = FleetPlanner(spec, oracle=oracle).plan()
        assert result.num_evaluated == 2
        assert result.num_pruned == 0
        # Higher attainment wins the equal-cost tie.
        assert result.best.overrides == {"workload.seed": 1}

    def test_infeasible_grid_evaluates_everything(self):
        spec = planner_spec(target_attainment=0.99)
        oracle = synthetic_oracle(spec, [0.1, 0.2, 0.3])
        result = FleetPlanner(spec, oracle=oracle).plan()
        assert result.best is None
        assert result.best_spec is None
        assert not result.feasible
        assert result.num_evaluated == result.total_points
        assert result.num_pruned == 0

    def test_pruning_soundness_property(self):
        """Seeded random grids: the planner always returns the exhaustive
        optimum, and pruned candidates are never cheaper than it."""
        kinds = ["t4:1", "p100:1", "rtx3090:1", "a100:1"]
        for trial in range(12):
            rng = make_rng(trial)
            n_kinds = int(rng.integers(2, len(kinds) + 1))
            replicas = [1, 2, 3][: int(rng.integers(1, 4))]
            seeds = [0, 1][: int(rng.integers(1, 3))]
            spec = planner_spec(
                search={
                    "cluster.kind": kinds[:n_kinds],
                    "cluster.replicas": replicas,
                    "workload.seed": seeds,
                },
                target_attainment=float(rng.uniform(0.3, 0.95)),
                seed=trial,
            )
            attainments = [float(a) for a in rng.random(spec.num_points)]
            result = FleetPlanner(
                spec, oracle=synthetic_oracle(spec, attainments)
            ).plan()
            best = exhaustive_best(spec, attainments)
            if best is None:
                assert result.best is None, f"trial {trial}"
                assert result.num_evaluated == result.total_points
                continue
            (key, overrides) = best
            assert result.best is not None, f"trial {trial}"
            assert result.best.overrides == overrides, f"trial {trial}"
            assert result.best.cost_per_hour == pytest.approx(key[0]), f"trial {trial}"
            for cand in result.candidates:
                if cand.pruned:
                    assert not cand.evaluated
                    assert cand.cost_per_hour > result.best.cost_per_hour


class TestDeterminism:
    def test_same_spec_same_result_across_runs(self):
        spec = planner_spec(
            search={
                "cluster.kind": ["t4:1", "rtx3090:1", "a100:1"],
                "workload.seed": [0, 1],
            },
            target_attainment=0.9,
            seed=11,
            budget=3,
            strategies=["greedy", "evolutionary"],
        )
        rng = make_rng(99)
        attainments = [float(a) for a in rng.random(spec.num_points)]
        first = FleetPlanner(spec, oracle=synthetic_oracle(spec, attainments)).plan()
        second = FleetPlanner(spec, oracle=synthetic_oracle(spec, attainments)).plan()
        assert first == second
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )

    def test_jobs_do_not_change_the_plan(self):
        """Real simulator: the chosen plan and every candidate row are
        bit-identical between serial and 4-way-parallel evaluation."""
        spec = planner_spec(
            search={"cluster.kind": ["rtx3090:2", "a100:1"]},
            target_attainment=0.6,
        )
        serial = FleetPlanner(spec, jobs=1).plan()
        parallel = FleetPlanner(spec, jobs=4).plan()
        assert serial.to_dict() == parallel.to_dict()
        assert serial.best is not None

    def test_evolutionary_bit_identical_under_fixed_seed(self):
        spec = planner_spec(
            search={
                "cluster.kind": ["t4:1", "rtx3090:1", "a100:1"],
                "cluster.replicas": [1, 2],
            },
            target_attainment=2.0e-2,
            strategies=["evolutionary"],
            generations=3,
            population=4,
            seed=5,
        )
        rng = make_rng(7)
        attainments = [float(a) for a in rng.random(spec.num_points)]
        runs = [
            FleetPlanner(spec, oracle=synthetic_oracle(spec, attainments)).plan()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        assert runs[0].num_evaluated > 0
        evaluated = [c for c in runs[0].candidates if c.evaluated]
        assert all(c.source == "evolution" for c in evaluated)

    def test_different_seed_may_change_evolution_but_stays_valid(self):
        spec_a = planner_spec(
            search={"cluster.kind": ["t4:1", "rtx3090:1", "a100:1"]},
            strategies=["evolutionary"],
            seed=1,
            target_attainment=0.5,
        )
        spec_b = PlannerSpec.from_dict({**spec_a.to_dict(), "seed": 2})
        attainments = [0.6, 0.7, 0.8]
        res_a = FleetPlanner(spec_a, oracle=synthetic_oracle(spec_a, attainments)).plan()
        res_b = FleetPlanner(spec_b, oracle=synthetic_oracle(spec_b, attainments)).plan()
        # Both searches stay within the declared grid whatever the seed drew.
        for res in (res_a, res_b):
            for cand in res.candidates:
                if cand.overrides:
                    assert cand.overrides["cluster.kind"] in spec_a.axes["cluster.kind"]


class TestBudgetAndInventory:
    def test_budget_truncates_the_search_deterministically(self):
        spec = planner_spec(
            search={"cluster.kind": ["t4:1", "rtx3090:1", "a100:1"]},
            target_attainment=0.9,
            budget=1,
        )
        oracle = synthetic_oracle(spec, [0.1, 0.95, 1.0])
        result = FleetPlanner(spec, oracle=oracle).plan()
        assert result.num_evaluated == 1  # only the cheapest tier ran
        assert result.budget_exhausted
        assert result.best is None

    def test_budget_override_via_run_plan(self, tmp_path):
        path = tmp_path / "plan.toml"
        path.write_text(
            "\n".join(
                [
                    "[planner]",
                    "target_attainment = 0.5",
                    "[planner.search]",
                    '"workload.seed" = [0, 1]',
                    "[deployment]",
                    'model = "llama-13b"',
                    '[deployment.system]',
                    'name = "static-tp"',
                    "[deployment.cluster]",
                    'kind = "a100:1"',
                    "[deployment.slo]",
                    "ttft_s = 2.0",
                    "tpot_s = 0.5",
                    "[deployment.workload]",
                    "num_requests = 5",
                    "request_rate = 4.0",
                ]
            )
        )
        result = run_plan(path, budget=1)
        assert result.budget == 1
        assert result.num_evaluated == 1

    def test_inventory_filters_before_any_evaluation(self):
        spec = planner_spec(
            search={"cluster.kind": ["t4:1", "rtx3090:1", "a100:1"]},
            target_attainment=0.5,
            inventory={"t4": 1, "rtx3090": 0, "a100": 1},
        )
        seen = []

        def oracle(points):
            seen.extend(dict(ov) for ov, _ in points)
            return [
                {"slo_attainment": 1.0, "goodput_rps": 1.0, "truncated": False}
                for _ in points
            ]

        result = FleetPlanner(spec, oracle=oracle).plan()
        assert result.num_filtered == 1
        assert {"cluster.kind": "rtx3090:1"} not in seen
        assert all(c.overrides != {"cluster.kind": "rtx3090:1"} for c in result.candidates)
        assert result.best.overrides == {"cluster.kind": "t4:1"}

    def test_inventory_can_filter_everything(self):
        spec = planner_spec(inventory={"t4": 0, "rtx3090": 0, "a100": 0})
        result = FleetPlanner(spec, oracle=synthetic_oracle(spec, [1.0, 1.0, 1.0])).plan()
        assert result.best is None
        assert result.num_filtered == result.total_points
        assert result.candidates == ()


class TestRealSimulator:
    def test_matches_exhaustive_enumeration(self):
        """Acceptance: the planner's pick equals brute-force over the grid."""
        spec = planner_spec(
            search={"cluster.kind": ["rtx3090:2", "a100:1"]},
            target_attainment=0.6,
        )
        result = FleetPlanner(spec, jobs=1).plan()

        oracle = SimulatorOracle(jobs=1)
        rows = oracle(spec.expand())
        best = None
        for idx, ((overrides, dspec), row) in enumerate(zip(spec.expand(), rows)):
            att = row.get("slo_attainment")
            if att is None or att < spec.target_attainment or row.get("truncated"):
                continue
            key = (fleet_cost_per_hour(dspec), -att, idx)
            if best is None or key < best[0]:
                best = (key, dict(overrides))
        assert best is not None
        assert result.best is not None
        assert result.best.overrides == best[1]
        assert result.best.cost_per_hour == pytest.approx(best[0][0])

    def test_unbuildable_candidate_is_infeasible_not_fatal(self):
        """A fleet too small for the model is an answer, not a crash."""
        spec = planner_spec(
            search={"cluster.kind": ["t4:1", "a100:1"]},
            target_attainment=0.6,
        )
        result = FleetPlanner(spec, jobs=1).plan()
        t4 = [c for c in result.candidates if c.overrides == {"cluster.kind": "t4:1"}]
        assert len(t4) == 1
        assert t4[0].evaluated
        assert t4[0].error is not None
        assert t4[0].feasible is False
        assert result.best.overrides == {"cluster.kind": "a100:1"}

    def test_cache_changes_wall_clock_not_the_plan(self, tmp_path):
        spec = planner_spec(
            search={"cluster.kind": ["rtx3090:2", "a100:1"]},
            target_attainment=0.6,
        )
        cold = FleetPlanner(spec, jobs=1, cache_dir=str(tmp_path)).plan()
        warm = FleetPlanner(spec, jobs=1, cache_dir=str(tmp_path)).plan()
        assert cold.to_dict() == warm.to_dict()
        assert cold.num_evaluated == warm.num_evaluated  # cache hits still count


class TestResultShapes:
    def test_plan_result_round_trip(self):
        spec = planner_spec(target_attainment=0.5)
        result = FleetPlanner(
            spec, oracle=synthetic_oracle(spec, [0.4, 0.9, 1.0])
        ).plan()
        again = PlanResult.from_dict(result.to_dict())
        assert again.to_dict() == result.to_dict()
        assert again == result

    def test_best_spec_is_runnable(self):
        spec = planner_spec(target_attainment=0.5)
        result = FleetPlanner(
            spec, oracle=synthetic_oracle(spec, [0.9, 0.1, 0.1])
        ).plan()
        rebuilt = DeploymentSpec.from_dict(result.best_spec)
        assert rebuilt.cluster.kind == "t4:1"
        assert rebuilt == spec.deployment.with_overrides(result.best.overrides)

    def test_candidate_round_trip(self):
        cand = PlanCandidate(
            overrides={"cluster.kind": "a100:1"},
            cost_per_hour=3.0,
            slo_attainment=0.97,
            goodput_rps=2.5,
            feasible=True,
            evaluated=True,
            source="greedy",
        )
        assert PlanCandidate.from_dict(cand.to_dict()) == cand
        assert cand.label == "cluster.kind=a100:1"

    def test_strategies_are_registered_plugins(self):
        assert set(PLANNER_STRATEGIES.available()) >= {"greedy", "evolutionary"}
