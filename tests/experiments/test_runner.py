"""Tests for the parallel experiment runner and the spec-driven driver.

The determinism suite is the load-bearing part: a pool run (``jobs=4``) must
produce rows bit-identical to the serial fallback (``jobs=1``) -- including
for elastic, heterogeneous deployments -- and a cache hit must return the
same rows without re-simulating anything.
"""

import json
from pathlib import Path

import pytest

from repro.config import ConfigError, DeploymentSpec, expand_grid
from repro.experiments import runner as runner_mod
from repro.experiments.driver import ExperimentSpec, load_experiment, run_experiment
from repro.experiments.runner import ResultCache, SweepRunner, Task


BASE = DeploymentSpec.from_dict(
    {
        "model": "llama-13b",
        "system": {"name": "static-tp"},
        "cluster": {"kind": "a100:1"},
        "workload": {"dataset": "sharegpt", "request_rate": 8.0, "num_requests": 5, "seed": 0},
    }
)

#: Includes replicated + elastic + heterogeneous machinery: per-replica
#: blueprints, a capacity-weighted router, autoscaling, and admission control.
ELASTIC_HETEROGENEOUS = DeploymentSpec.from_dict(
    {
        "model": "llama-13b",
        "system": {"name": "static-tp"},
        "cluster": {"replica_kinds": ["a100:1", "rtx3090:2"]},
        "router": {"name": "weighted-least-kv"},
        "elasticity": {
            "autoscaler": "target-kv",
            "autoscaler_options": {"interval": 1.0, "target_utilization": 0.5},
            "admission": "queue-threshold",
            "admission_options": {"max_queue_depth": 4, "mode": "reject"},
        },
        "workload": {"dataset": "sharegpt", "request_rate": 12.0, "num_requests": 8, "seed": 0},
    }
)

GRID = {"workload.request_rate": [6.0, 12.0], "workload.seed": [0, 1]}


def rows_of(results):
    assert all(res.error is None for res in results), [res.error for res in results]
    return [res.row for res in results]


class TestDeterminism:
    def test_parallel_rows_bit_identical_to_serial(self):
        combos = expand_grid(BASE, GRID)
        serial = SweepRunner(jobs=1).run(combos)
        parallel = SweepRunner(jobs=4).run(combos)
        assert rows_of(parallel) == rows_of(serial)
        assert [r.label for r in parallel] == [r.label for r in serial]
        assert [r.index for r in parallel] == list(range(len(combos)))

    @pytest.mark.slow
    def test_parallel_rows_bit_identical_for_elastic_heterogeneous_grid(self):
        combos = expand_grid(
            ELASTIC_HETEROGENEOUS,
            {
                "elasticity.autoscaler_options.target_utilization": [0.4, 0.8],
                "workload.request_rate": [8.0, 16.0],
            },
        )
        serial = SweepRunner(jobs=1).run(combos)
        parallel = SweepRunner(jobs=4).run(combos)
        assert rows_of(parallel) == rows_of(serial)

    def test_serial_matches_direct_build_run(self):
        """The jobs=1 fallback is the same simulation as api.build(spec).run()."""
        from repro.api import build
        from repro.core.cluster_system import system_cost_per_hour
        from repro.experiments.runner import summary_row

        (result,) = SweepRunner(jobs=1).run([({}, BASE)])
        prepared = build(BASE)
        expected = summary_row(prepared.run())
        expected["cost_per_hour"] = system_cost_per_hour(prepared.system)
        assert result.row == expected

    def test_rows_carry_the_catalog_fleet_price(self):
        """cost_per_hour is the hardware catalog's $/hr for the built fleet."""
        (result,) = SweepRunner(jobs=1).run([({}, BASE)])
        assert result.row["cost_per_hour"] == pytest.approx(3.00)  # 1x a100
        two = BASE.with_overrides({"cluster.replicas": 2})
        (result,) = SweepRunner(jobs=1).run([({}, two)])
        assert result.row["cost_per_hour"] == pytest.approx(6.00)


class TestCache:
    def test_cache_hit_returns_identical_rows_without_rerunning(self, tmp_path, monkeypatch):
        combos = expand_grid(BASE, {"workload.seed": [0, 1]})
        first = SweepRunner(jobs=1, cache_dir=str(tmp_path)).run(combos)
        assert [res.cached for res in first] == [False, False]

        def boom(kind, payload):  # any execution on the second pass is a bug
            raise AssertionError("cache hit must not re-simulate")

        monkeypatch.setattr(runner_mod, "_execute_task", boom)
        second = SweepRunner(jobs=1, cache_dir=str(tmp_path)).run(combos)
        assert [res.cached for res in second] == [True, True]
        assert rows_of(second) == rows_of(first)

    def test_cache_is_keyed_by_spec_content(self, tmp_path):
        sweep = SweepRunner(jobs=1, cache_dir=str(tmp_path))
        sweep.run([({}, BASE)])
        other = BASE.with_overrides({"workload.seed": 3})
        (res,) = sweep.run([({}, other)])
        assert not res.cached  # different spec, different hash

    def test_corrupt_cache_entry_degrades_to_miss(self, tmp_path):
        combos = [({}, BASE)]
        sweep = SweepRunner(jobs=1, cache_dir=str(tmp_path))
        (first,) = sweep.run(combos)
        for entry in tmp_path.glob("*.json"):
            entry.write_text("{not json")
        (again,) = SweepRunner(jobs=1, cache_dir=str(tmp_path)).run(combos)
        assert not again.cached
        assert again.row == first.row

    def test_cache_version_mismatch_is_a_miss(self, tmp_path):
        combos = [({}, BASE)]
        SweepRunner(jobs=1, cache_dir=str(tmp_path)).run(combos)
        for entry in tmp_path.glob("*.json"):
            data = json.loads(entry.read_text())
            data["version"] = -1
            entry.write_text(json.dumps(data))
        cache = ResultCache(tmp_path)
        key = cache.key("deployment", BASE.to_dict())
        assert cache.load(key, "deployment", BASE.to_dict()) is None

    def test_parallel_run_populates_cache_for_serial_rerun(self, tmp_path):
        combos = expand_grid(BASE, {"workload.seed": [0, 1]})
        parallel = SweepRunner(jobs=2, cache_dir=str(tmp_path)).run(combos)
        rerun = SweepRunner(jobs=1, cache_dir=str(tmp_path)).run(combos)
        assert [res.cached for res in rerun] == [True, True]
        assert rows_of(rerun) == rows_of(parallel)


class TestErrorCapture:
    @pytest.fixture()
    def failing_combos(self):
        # Parses fine (options are free-form) but the system builder rejects
        # the unknown keyword at build time -- inside the worker.
        bad = BASE.with_overrides({"system.options.bogus": 1})
        return [({"system.options.bogus": 1}, bad), ({}, BASE)]

    def test_serial_error_names_the_failing_point_and_skips_the_rest(self, failing_combos):
        results = SweepRunner(jobs=1).run(failing_combos)
        assert results[0].error is not None
        assert "bogus" in results[0].error
        assert results[0].label == "system.options.bogus=1"
        assert results[1].skipped and results[1].row is None

    def test_serial_keep_going_still_runs_the_rest(self, failing_combos):
        results = SweepRunner(jobs=1, stop_on_error=False).run(failing_combos)
        assert results[0].error is not None
        assert results[1].ok and not results[1].skipped

    def test_pool_error_names_the_failing_point(self, failing_combos):
        results = SweepRunner(jobs=2).run(failing_combos)
        assert results[0].error is not None and "bogus" in results[0].error
        assert results[0].label == "system.options.bogus=1"
        # both points start immediately on a 2-wide pool, so the second is
        # already running when the failure is observed and keeps its result
        assert results[1].ok

    def test_errors_are_never_cached(self, tmp_path, failing_combos):
        SweepRunner(jobs=1, cache_dir=str(tmp_path)).run(failing_combos)
        results = SweepRunner(jobs=1, cache_dir=str(tmp_path)).run(failing_combos)
        assert not results[0].cached and results[0].error is not None


class TestValidation:
    def test_jobs_must_be_positive_int(self):
        with pytest.raises(ValueError, match="jobs"):
            SweepRunner(jobs=0)
        with pytest.raises(ValueError, match="jobs"):
            SweepRunner(jobs=True)

    def test_unknown_task_kind_fails_before_any_work(self):
        with pytest.raises(ValueError, match="unknown sweep task kind"):
            SweepRunner().run_tasks([Task(kind="teleport", payload={})])

    def test_points_must_carry_specs(self):
        with pytest.raises(TypeError, match="DeploymentSpec"):
            SweepRunner().run([({}, {"model": "llama-13b"})])

    def test_map_label_count_checked(self):
        with pytest.raises(ValueError, match="labels"):
            SweepRunner().map("deployment", [BASE.to_dict()], labels=["a", "b"])


class TestGenericTasks:
    def test_table1_parallel_matches_serial(self):
        from repro.experiments.table1 import run_table1

        serial = run_table1(jobs=1)
        parallel = run_table1(jobs=2)
        assert parallel == serial
        assert serial[0].device == "a100"
        assert serial[2].prefill_ratio_vs_a100 > serial[1].prefill_ratio_vs_a100 > 1.0

    def test_dynamic_parallelism_ablation_parallel_matches_serial(self):
        from repro.experiments.ablation import run_dynamic_parallelism_ablation

        kwargs = dict(num_requests=8, request_rate=6.0)
        assert run_dynamic_parallelism_ablation(jobs=2, **kwargs) == run_dynamic_parallelism_ablation(**kwargs)

    @pytest.mark.slow
    def test_rate_sweep_parallel_matches_serial(self):
        from repro.experiments.e2e import run_rate_sweep

        kwargs = dict(systems=("static-tp",), rates=(4.0, 10.0), num_requests=10)
        serial = run_rate_sweep("llama-13b", "sharegpt", **kwargs)
        parallel = run_rate_sweep("llama-13b", "sharegpt", jobs=2, **kwargs)
        assert parallel == serial
        assert [p.request_rate for p in serial["static-tp"].points] == [4.0, 10.0]


EXPERIMENT_TOML = """
[experiment]
name = "tiny-grid"
description = "two-point smoke study"

[experiment.grid]
"workload.request_rate" = [6.0, 12.0]

[deployment]
model = "llama-13b"

[deployment.system]
name = "static-tp"

[deployment.cluster]
kind = "a100:1"

[deployment.workload]
dataset = "sharegpt"
request_rate = 5.0
num_requests = 4
seed = 0
"""


class TestDriver:
    def test_load_and_run_experiment(self, tmp_path):
        path = tmp_path / "exp.toml"
        path.write_text(EXPERIMENT_TOML)
        experiment = load_experiment(path)
        assert experiment.name == "tiny-grid"
        assert experiment.num_points == 2
        assert experiment.axes == {"workload.request_rate": [6.0, 12.0]}
        run = run_experiment(experiment, jobs=1)
        rows = run.rows()
        assert len(rows) == 2
        assert [row["workload.request_rate"] for row in rows] == [6.0, 12.0]
        assert all(row["num_finished"] == 4 for row in rows)
        assert run.errors() == [] and run.num_cached == 0

    def test_checked_in_fig14_grid_config_loads(self):
        config = Path(__file__).resolve().parents[2] / "examples" / "configs" / "fig14_grid.toml"
        experiment = load_experiment(config)
        assert experiment.name == "fig14-elasticity-grid"
        assert experiment.num_points == 6
        assert experiment.base.elasticity is not None
        # every expanded point re-validates at load time
        assert len(experiment.expand()) == 6

    def test_rejects_missing_sections(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("[experiment]\nname = 'x'\n")
        with pytest.raises(ConfigError, match="deployment"):
            load_experiment(path)
        path.write_text("[deployment]\nmodel = 'llama-13b'\n")
        with pytest.raises(ConfigError, match="experiment"):
            load_experiment(path)

    def test_rejects_unknown_experiment_keys_and_empty_axes(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text(
            "[experiment]\nname = 'x'\nbudget = 3\n[deployment]\nmodel = 'llama-13b'\n"
        )
        with pytest.raises(ConfigError, match="budget"):
            load_experiment(path)
        with pytest.raises(ConfigError, match="no values"):
            ExperimentSpec.from_dict(
                {
                    "experiment": {"name": "x", "grid": {"workload.seed": []}},
                    "deployment": {"model": "llama-13b"},
                }
            )

    def test_grid_scalar_axis_becomes_single_point(self):
        experiment = ExperimentSpec.from_dict(
            {
                "experiment": {"name": "x", "grid": {"workload.seed": 3}},
                "deployment": {"model": "llama-13b"},
            }
        )
        assert experiment.axes == {"workload.seed": [3]}
