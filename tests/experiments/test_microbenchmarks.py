"""Tests for the fast (analytic) experiment drivers: Table 1, Figs. 2, 5, 7,
Fig. 15(b), modeling accuracy, and search overhead."""

import pytest

from repro.experiments import accuracy, fig02, fig05, fig07, fig15, search_overhead, table1


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return table1.run_table1()

    def test_three_rows_in_device_order(self, rows):
        assert [r.device for r in rows] == ["a100", "rtx3090", "p100"]

    def test_formatting_contains_all_devices(self, rows):
        text = table1.format_table(rows)
        for device in ("a100", "rtx3090", "p100"):
            assert device in text

    def test_reference_row_is_unity(self, rows):
        assert rows[0].prefill_ratio_vs_a100 == pytest.approx(1.0)
        assert rows[0].decode_ratio_vs_a100 == pytest.approx(1.0)

    def test_ordering_matches_paper(self, rows):
        by_dev = {r.device: r for r in rows}
        assert by_dev["p100"].prefill_ratio_vs_a100 > by_dev["rtx3090"].prefill_ratio_vs_a100 > 1.0
        assert by_dev["p100"].decode_ratio_vs_a100 > by_dev["rtx3090"].decode_ratio_vs_a100 > 1.0


class TestFig2:
    def test_series_structure(self):
        series = fig02.run_fig2(num_requests=(20, 100))
        assert set(series) == {"p100", "rtx3090", "a100"}
        assert series["p100"].num_requests == [20, 100]
        assert len(series["p100"].norm_mlp_time) == 2

    def test_key_takeaway_mlp_gap_exceeds_attention_gap(self):
        series = fig02.run_fig2(num_requests=(20, 200))
        assert fig02.mean_gap(series, "p100", "mlp") > fig02.mean_gap(series, "p100", "attention")


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig05.run_fig5()

    def test_headwise_beats_seqwise_at_all_ratios(self, result):
        for head, seq in zip(result.headwise_by_ratio, result.seqwise_by_ratio):
            assert head < seq

    def test_advantage_largest_at_low_offload(self, result):
        assert result.headwise_advantage_at(0.2) > result.headwise_advantage_at(0.8)
        assert result.headwise_advantage_at(0.2) > 1.5

    def test_headwise_improves_with_more_workers(self, result):
        assert result.headwise_by_workers[-1] < result.headwise_by_workers[0]
        assert result.headwise_advantage_at_workers(4) > result.headwise_advantage_at_workers(1)


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig07.run_fig7()

    def test_flat_in_request_count(self, result):
        assert result.requests_variation() < 0.10

    def test_linear_in_cache_and_heads(self, result):
        assert result.context_linearity() > 0.98
        assert result.heads_linearity() > 0.95

    def test_monotone_growth(self, result):
        assert result.time_by_context == sorted(result.time_by_context)
        assert result.time_by_heads == sorted(result.time_by_heads)


class TestFig15b:
    def test_overhead_numbers_match_paper_shape(self):
        overhead = fig15.run_head_management_overhead()
        assert 1.05 <= overhead.storage_op_ratio <= 1.25   # paper: +13%
        assert 0.6 <= overhead.fetch_time_ratio <= 0.9     # paper: -26%


class TestModelingAccuracy:
    def test_accuracy_at_least_as_good_as_paper(self):
        result = accuracy.run_modeling_accuracy(num_holdout=12)
        assert result.min_compute >= 0.90
        assert result.min_transfer >= 0.90
        assert set(result.compute_accuracy) == {"a100", "rtx3090", "p100"}


class TestSearchOverhead:
    def test_search_completes_quickly_on_both_clusters(self):
        results = search_overhead.run_search_overhead(gpus_per_type=16)
        assert len(results) == 2
        paper, large = results
        assert paper.num_devices == 12
        assert large.num_devices == 5 * 16
        assert paper.search_seconds < 10.0
        assert large.search_seconds < 60.0
        assert large.num_primary + large.num_attention_workers <= large.num_devices
