"""Chaos suite for the fault-tolerance layer of the experiment runner.

Injects the three real-world failure modes -- a worker that dies mid-task
(``os._exit``), a task that hangs past its deadline, a flaky task that fails
N times before succeeding -- and asserts the contracts ISSUE 10 promises:
crashes are isolated to their point, timeouts are enforced on the wall
clock, retries converge with counted attempts, and a journaled run killed
mid-flight resumes to a bit-identical final table.

The chaos task kinds are registered at import time of this module; the pool
uses the ``fork`` start method on Linux, so worker processes inherit them.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.config import DeploymentSpec, ExecutionSpec
from repro.experiments import runner as runner_mod
from repro.experiments.runner import (
    PointResult,
    RunJournal,
    SweepRunner,
    TASK_KINDS,
    Task,
    degradation_report,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


# ------------------------------------------------------------- chaos task kinds


@TASK_KINDS.register("chaos-ok", help="return its payload value", overwrite=True)
def _chaos_ok(payload):
    return {"value": payload["value"]}


@TASK_KINDS.register("chaos-crash", help="kill the worker process", overwrite=True)
def _chaos_crash(payload):
    os._exit(13)


@TASK_KINDS.register("chaos-sleep", help="sleep past any deadline", overwrite=True)
def _chaos_sleep(payload):
    time.sleep(payload["seconds"])
    return {"value": payload.get("value", "slept")}


@TASK_KINDS.register(
    "chaos-flaky", help="fail until the cross-process counter reaches the quota",
    overwrite=True,
)
def _chaos_flaky(payload):
    # The counter lives on disk because retries may land in different worker
    # processes (or fresh pools after a rebuild).
    counter = Path(payload["counter"])
    seen = int(counter.read_text()) if counter.exists() else 0
    if seen < int(payload["fail_times"]):
        counter.write_text(str(seen + 1))
        raise RuntimeError(f"flaky failure {seen + 1}")
    return {"value": payload["value"]}


def ok_task(value, label=None):
    return Task(kind="chaos-ok", payload={"value": value}, label=label or f"ok-{value}")


def crash_task(label="crasher", salt=0):
    return Task(kind="chaos-crash", payload={"salt": salt}, label=label)


def sleep_task(seconds, label="sleeper", value="slept"):
    return Task(
        kind="chaos-sleep", payload={"seconds": seconds, "value": value}, label=label
    )


def flaky_task(tmp_path, fail_times, value="recovered", label="flaky"):
    return Task(
        kind="chaos-flaky",
        payload={
            "counter": str(tmp_path / f"{label}.count"),
            "fail_times": fail_times,
            "value": value,
        },
        label=label,
    )


# ------------------------------------------------------------------- timeouts


class TestTimeouts:
    def test_hanging_point_booked_as_timeout_and_neighbor_survives(self):
        runner = SweepRunner(jobs=2, task_timeout=1.0)
        start = time.monotonic()
        results = runner.run_tasks([sleep_task(60.0), ok_task(7)])
        elapsed = time.monotonic() - start
        assert elapsed < 30.0, "timeout must bound the wall clock, not the sleep"
        hung, ok = results
        assert hung.error_kind == "timeout"
        assert "timed out after 1s" in hung.error
        assert ok.row == {"value": 7}

    def test_timeout_applies_to_single_job_runs(self):
        # jobs=1 with a timeout still routes through a killable worker pool.
        runner = SweepRunner(jobs=1, task_timeout=0.5, stop_on_error=False)
        results = runner.run_tasks([sleep_task(60.0), ok_task(1)])
        assert results[0].error_kind == "timeout"
        assert results[1].row == {"value": 1}

    def test_timed_out_point_retries_before_failing(self):
        runner = SweepRunner(jobs=2, task_timeout=0.5, max_retries=1, backoff_base=0.0)
        results = runner.run_tasks([sleep_task(60.0)])
        assert results[0].error_kind == "timeout"
        assert results[0].attempts == 2


# ------------------------------------------------------------- crash isolation


class TestCrashIsolation:
    def test_crash_kills_only_its_point(self):
        runner = SweepRunner(jobs=2, stop_on_error=False)
        results = runner.run_tasks([ok_task(1), crash_task(), ok_task(2)])
        assert results[0].row == {"value": 1}
        assert results[2].row == {"value": 2}
        assert results[1].error_kind == "crash"
        assert "worker process died" in results[1].error

    def test_crash_retry_consumes_budget_then_books(self):
        runner = SweepRunner(jobs=2, stop_on_error=False, max_retries=1, backoff_base=0.0)
        results = runner.run_tasks([crash_task(), ok_task(5)])
        assert results[0].error_kind == "crash"
        assert results[0].attempts == 2
        assert results[1].row == {"value": 5}

    def test_many_crashes_exhaust_pool_restart_budget_honestly(self):
        runner = SweepRunner(
            jobs=2, stop_on_error=False, max_pool_restarts=1, backoff_base=0.0
        )
        tasks = [crash_task(label=f"crash-{i}", salt=i) for i in range(4)] + [ok_task(9)]
        results = runner.run_tasks(tasks)
        crashed = [r for r in results if r.error_kind == "crash"]
        exhausted = [r for r in results if r.error and "restart budget" in r.error]
        assert crashed, "at least the first crash must be attributed"
        assert exhausted, "points beyond the restart budget must say why they stopped"
        assert all(r.error is not None or r.row is not None for r in results)


# -------------------------------------------------------------------- retries


class TestRetries:
    def test_flaky_point_recovers_with_counted_attempts(self, tmp_path):
        runner = SweepRunner(
            jobs=2, max_retries=3, backoff_base=0.0, retry_errors=("RuntimeError",)
        )
        results = runner.run_tasks([flaky_task(tmp_path, fail_times=2), ok_task(1)])
        assert results[0].row == {"value": "recovered"}
        assert results[0].attempts == 3
        assert results[1].attempts == 1

    def test_flaky_point_recovers_on_serial_path(self, tmp_path):
        runner = SweepRunner(
            jobs=1, max_retries=2, backoff_base=0.0, retry_errors=("RuntimeError",)
        )
        results = runner.run_tasks([flaky_task(tmp_path, fail_times=1)])
        assert results[0].row == {"value": "recovered"}
        assert results[0].attempts == 2

    def test_retries_exhausted_books_the_final_error(self, tmp_path):
        runner = SweepRunner(
            jobs=2,
            stop_on_error=False,
            max_retries=1,
            backoff_base=0.0,
            retry_errors=("RuntimeError",),
        )
        results = runner.run_tasks([flaky_task(tmp_path, fail_times=10), ok_task(2)])
        assert results[0].error_kind == "exception"
        assert results[0].error.startswith("RuntimeError:")
        assert results[0].attempts == 2

    def test_exceptions_not_opted_in_are_never_retried(self, tmp_path):
        runner = SweepRunner(jobs=2, stop_on_error=False, max_retries=3, backoff_base=0.0)
        results = runner.run_tasks([flaky_task(tmp_path, fail_times=1), ok_task(3)])
        assert results[0].error_kind == "exception"
        assert results[0].attempts == 1

    def test_backoff_schedule_is_deterministic(self):
        runner = SweepRunner(jobs=2, max_retries=3, backoff_base=0.5)
        assert [runner._backoff_delay(k) for k in (1, 2, 3)] == [0.5, 1.0, 2.0]


# ----------------------------------------------------------- journal & resume


class TestJournalResume:
    def test_resume_replays_rows_bit_identically(self, tmp_path):
        journal = tmp_path / "run.journal"
        tasks = [ok_task(1), ok_task(2), ok_task(3)]
        first = SweepRunner(jobs=2, journal=str(journal)).run_tasks(tasks)
        assert len(journal.read_text().splitlines()) == 3
        second = SweepRunner(jobs=2, journal=str(journal)).run_tasks(tasks)
        assert [r.row for r in second] == [r.row for r in first]
        assert all(r.resumed for r in second)
        # replay recomputes nothing: no new journal lines were appended
        assert len(journal.read_text().splitlines()) == 3

    def test_errored_points_are_reattempted_on_resume(self, tmp_path):
        journal = tmp_path / "run.journal"
        flaky = flaky_task(tmp_path, fail_times=1)
        first = SweepRunner(jobs=1, stop_on_error=False, journal=str(journal)).run_tasks(
            [flaky, ok_task(4)]
        )
        assert first[0].error is not None and first[1].row == {"value": 4}
        # the counter has burned its one failure; the resumed run must re-run
        # the errored point (and only it) and now succeed
        second = SweepRunner(jobs=1, stop_on_error=False, journal=str(journal)).run_tasks(
            [flaky, ok_task(4)]
        )
        assert second[0].row == {"value": "recovered"} and not second[0].resumed
        assert second[1].resumed

    def test_journal_tolerates_torn_and_alien_lines(self, tmp_path):
        journal = tmp_path / "run.journal"
        SweepRunner(jobs=1, journal=str(journal)).run_tasks([ok_task(1)])
        with open(journal, "a") as fh:
            fh.write("{\"key\": \"torn-off-half-way\n")
            fh.write("not json at all\n")
            fh.write(json.dumps({"version": -1, "key": "stale", "kind": "chaos-ok"}) + "\n")
        with pytest.warns(RuntimeWarning, match="malformed|stale"):
            loaded = RunJournal(journal)
        assert loaded.malformed_lines == 3
        assert len(loaded) == 1

    def test_journal_and_cache_compose(self, tmp_path):
        journal, cache = tmp_path / "run.journal", tmp_path / "cache"
        tasks = [ok_task(1), ok_task(2)]
        SweepRunner(jobs=1, cache_dir=str(cache)).run_tasks(tasks)
        # fresh journal, warm cache: cache hits are appended to the journal so
        # it stays a complete record of the run
        results = SweepRunner(
            jobs=1, cache_dir=str(cache), journal=str(journal)
        ).run_tasks(tasks)
        assert all(r.cached for r in results)
        assert len(journal.read_text().splitlines()) == 2

    @pytest.mark.slow
    def test_kill_mid_run_then_resume_is_bit_identical(self, tmp_path):
        """SIGKILL a journaled sweep mid-flight; the resumed run's table must
        match an uninterrupted run byte for byte."""
        config = tmp_path / "deploy.json"
        config.write_text(json.dumps({
            "model": "llama-13b",
            "system": {"name": "static-tp"},
            "cluster": {"kind": "a100:1"},
            "workload": {"dataset": "sharegpt", "request_rate": 8.0,
                         "num_requests": 40, "seed": 0},
        }))
        journal = tmp_path / "killed.journal"
        out_resumed = tmp_path / "resumed.csv"
        out_clean = tmp_path / "clean.csv"
        grid = "workload.seed=0,1,2,3"

        def sweep_args(journal_path, out_path):
            return [
                sys.executable, "-m", "repro", "sweep", str(config),
                "--grid", grid, "--jobs", "2",
                "--resume", str(journal_path), "--out", str(out_path),
            ]

        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.Popen(
            sweep_args(journal, out_resumed), env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if journal.exists() and journal.read_text().count("\n") >= 1:
                    break
                if proc.poll() is not None:
                    break  # finished before we could kill it; resume still covers replay
                time.sleep(0.05)
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()

        resumed = subprocess.run(
            sweep_args(journal, out_resumed), env=env, capture_output=True, text=True
        )
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        clean = subprocess.run(
            sweep_args(tmp_path / "fresh.journal", out_clean),
            env=env, capture_output=True, text=True,
        )
        assert clean.returncode == 0, clean.stdout + clean.stderr
        assert out_resumed.read_bytes() == out_clean.read_bytes()


# ------------------------------------------------------------------ teardown


class TestCancellation:
    def test_teardown_books_pending_points_as_cancelled(self, monkeypatch):
        """A BaseException mid-drain labels every in-flight/queued point
        cancelled (naming its override combo) before re-raising."""
        real_wait = runner_mod.wait
        calls = {"n": 0}

        def exploding_wait(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise KeyboardInterrupt
            return real_wait(*args, **kwargs)

        monkeypatch.setattr(runner_mod, "wait", exploding_wait)
        runner = SweepRunner(jobs=2, stop_on_error=False)
        tasks = [sleep_task(30.0, label="combo-a"), sleep_task(30.0, label="combo-b")]
        results: list = [None, None]
        pending = [(idx, task, None) for idx, task in enumerate(tasks)]
        with pytest.raises(KeyboardInterrupt):
            runner._run_pool(pending, results)
        assert all(isinstance(r, PointResult) for r in results)
        for res, task in zip(results, tasks):
            assert res.error_kind == "cancelled"
            assert res.skipped
            assert task.label in res.error
        counts = degradation_report(results)
        assert counts["cancelled"] == 2


# -------------------------------------------------------------- repro figures


class TestFiguresFaultTolerance:
    def test_figures_survives_injected_worker_crash(self, tmp_path):
        """A worker crash inside `repro figures` loses one point, not the run."""
        from repro.experiments.figures import run_figures

        study = tmp_path / "study.toml"
        study.write_text("\n".join([
            "[experiment]",
            'name = "chaos-study"',
            "[experiment.grid]",
            '"workload.seed" = [0, 1, 2]',
            "[deployment]",
            'model = "llama-13b"',
            "[deployment.system]",
            'name = "static-tp"',
            "[deployment.cluster]",
            'kind = "a100:1"',
            "[deployment.workload]",
            'dataset = "sharegpt"',
            "num_requests = 4",
        ]) + "\n")

        real_deployment = TASK_KINDS.require("deployment")

        def crashing_deployment(payload):
            # Workers inherit this wrapper via fork; seed 1 dies mid-task.
            if payload.get("workload", {}).get("seed") == 1:
                os._exit(23)
            return real_deployment(payload)

        TASK_KINDS.register("deployment", crashing_deployment, overwrite=True)
        try:
            journal = tmp_path / "figures.journal"
            report = run_figures(
                [study], jobs=2, execution=ExecutionSpec(journal=str(journal))
            )
        finally:
            TASK_KINDS.register("deployment", real_deployment, overwrite=True)

        counts = report.counts
        assert counts["points"] == 3
        assert counts["ok"] == 2, "completed points must survive the crash"
        assert counts["errored"] == 1
        assert 0.6 < report.success_fraction < 0.7
        crashed = [r for r in report.results if r.error_kind == "crash"]
        assert len(crashed) == 1 and "workload.seed=1" in crashed[0].label
        # every point is journaled: the two finished rows replay on resume,
        # the crash is recorded as an error record that gets re-attempted
        records = [json.loads(line) for line in journal.read_text().splitlines()]
        assert sorted(rec["status"] for rec in records) == ["error", "ok", "ok"]

    def test_figures_resume_completes_after_crash(self, tmp_path):
        from repro.experiments.figures import run_figures

        spec = {
            "model": "llama-13b",
            "system": {"name": "static-tp"},
            "cluster": {"kind": "a100:1"},
            "workload": {"dataset": "sharegpt", "num_requests": 4, "seed": 0},
        }
        config = tmp_path / "deploy.json"
        config.write_text(json.dumps(spec))
        journal = tmp_path / "figures.journal"
        execution = ExecutionSpec(journal=str(journal))
        first = run_figures([config], jobs=1, execution=execution)
        assert first.success_fraction == 1.0
        second = run_figures([config], jobs=1, execution=execution)
        assert second.success_fraction == 1.0
        assert all(r.resumed for r in second.results)
        assert [r.row for r in second.results] == [r.row for r in first.results]


# ------------------------------------------------------------------- hygiene


class TestLintClean:
    def test_new_modules_pass_repro_lint_with_no_baseline(self):
        from repro.analysis import lint_paths

        report = lint_paths(
            [
                str(REPO_ROOT / "src" / "repro" / "experiments" / "runner.py"),
                str(REPO_ROOT / "src" / "repro" / "experiments" / "figures.py"),
                str(REPO_ROOT / "src" / "repro" / "cli.py"),
            ],
            baseline=None,
        )
        assert report.ok, [f.format() for f in report.findings]
