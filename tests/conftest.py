"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.hardware.cluster import ClusterBuilder, paper_cluster, simple_cluster
from repro.models.spec import get_model_spec


@pytest.fixture
def cluster():
    """The paper's 12-GPU evaluation cluster (fresh per test: devices are mutable)."""
    return paper_cluster()


@pytest.fixture
def small_cluster():
    """A compact 1x A100 + 2x 3090 cluster for fast serving tests."""
    return simple_cluster("a100", "rtx3090", n_high=1, n_low=2)


@pytest.fixture
def two_type_cluster():
    """One A100 host and one P100 host (used by communication-pattern tests)."""
    return ClusterBuilder().add_host("a100", 1).add_host("p100", 2).build()


@pytest.fixture
def llama13b():
    return get_model_spec("llama-13b")


@pytest.fixture
def llama70b():
    return get_model_spec("llama-70b")


@pytest.fixture
def opt30b():
    return get_model_spec("opt-30b")


@pytest.fixture
def opt27b():
    return get_model_spec("opt-2.7b")
