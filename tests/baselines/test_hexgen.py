"""Tests for the HexGen baseline planner and system."""

import pytest

from repro.baselines.hexgen import build_hexgen_system, plan_hexgen_config
from repro.hardware.cluster import ClusterBuilder, paper_cluster
from repro.models.spec import get_model_spec
from repro.sim.engine import Engine
from repro.workloads.trace import generate_trace


class TestPlanner:
    def test_stages_are_homogeneous_per_host(self):
        config = plan_hexgen_config(paper_cluster(), get_model_spec("llama-70b"))
        instance = config.instances[0]
        for stage in instance.stages:
            types = {d.spec.name for d in stage.devices}
            hosts = {d.host_id for d in stage.devices}
            assert len(types) == 1 and len(hosts) == 1

    def test_four_stages_on_paper_cluster(self):
        """Matches the paper's HexGen deployment: one stage per homogeneous group."""
        config = plan_hexgen_config(paper_cluster(), get_model_spec("llama-70b"))
        assert len(config.instances[0].stages) == 4

    def test_layers_skewed_towards_faster_stages(self):
        config = plan_hexgen_config(paper_cluster(), get_model_spec("llama-70b"))
        stages = config.instances[0].stages
        a100_layers = next(s.num_layers for s in stages if s.devices[0].spec.name == "a100")
        p100_layers = next(s.num_layers for s in stages if s.devices[0].spec.name == "p100")
        assert a100_layers > p100_layers

    def test_layers_cover_model(self):
        model = get_model_spec("opt-30b")
        config = plan_hexgen_config(paper_cluster(), model)
        assert config.instances[0].total_layers == model.num_layers

    def test_memory_repair_moves_layers_off_small_devices(self):
        model = get_model_spec("llama-70b")
        config = plan_hexgen_config(paper_cluster(), model)
        assert config.instances[0].fits_in_memory(model)

    def test_data_parallel_instances(self):
        config = plan_hexgen_config(paper_cluster(), get_model_spec("llama-13b"), num_instances=2)
        assert len(config.instances) == 2

    def test_model_too_large_raises(self):
        tiny = ClusterBuilder().add_host("p100", 2).build()
        with pytest.raises(MemoryError):
            plan_hexgen_config(tiny, get_model_spec("llama-70b"))


class TestSystem:
    def test_end_to_end_run(self):
        system = build_hexgen_system(paper_cluster(), get_model_spec("llama-13b"))
        result = Engine(system).run(generate_trace("sharegpt", 5.0, 12, seed=0))
        assert result.summary.num_finished == 12
        assert result.summary.mean_normalized_latency > 0

    def test_available_cache_limited_by_bottleneck(self):
        """HexGen's effective cache reflects the computation/memory imbalance (Fig. 1b)."""
        model = get_model_spec("llama-13b")
        system = build_hexgen_system(paper_cluster(), model)
        usable_total = sum(d.usable_bytes for d in paper_cluster().devices) - model.param_bytes
        assert system.available_cache_bytes() < usable_total
