"""Tests for the Splitwise baseline."""

import pytest

from repro.baselines.splitwise import build_splitwise_system
from repro.hardware.cluster import ClusterBuilder, paper_cluster
from repro.models.spec import get_model_spec
from repro.sim.engine import Engine
from repro.workloads.trace import generate_trace


class TestDeployment:
    def test_prefill_on_fastest_gpus(self):
        system = build_splitwise_system(paper_cluster(), get_model_spec("llama-13b"))
        prefill_types = {d.spec.name for d in system.prefill_unit.config.primary_devices}
        assert prefill_types == {"a100"}

    def test_decode_on_low_end_gpus_for_small_model(self):
        system = build_splitwise_system(paper_cluster(), get_model_spec("llama-13b"))
        decode_types = {d.spec.name for d in system.decode_unit.config.primary_devices}
        assert decode_types == {"rtx3090", "p100"}

    def test_large_model_borrows_high_end_gpus_for_decode(self):
        """Llama-70B cannot fit a second copy on 3090s+P100s alone."""
        system = build_splitwise_system(paper_cluster(), get_model_spec("llama-70b"))
        decode_types = {d.spec.name for d in system.decode_unit.config.primary_devices}
        assert "a100" in decode_types
        # Prefill still keeps at least one A100.
        assert len(system.prefill_unit.config.primary_devices) >= 1

    def test_both_copies_fit_in_memory(self):
        model = get_model_spec("opt-30b")
        system = build_splitwise_system(paper_cluster(), model)
        assert system.prefill_unit.config.fits_in_memory(model)
        assert system.decode_unit.config.fits_in_memory(model)

    def test_single_device_cluster_rejected(self):
        tiny = ClusterBuilder().add_host("a100", 1).build()
        with pytest.raises(ValueError):
            build_splitwise_system(tiny, get_model_spec("llama-13b"))

    def test_cache_metric_counts_decode_side_only(self):
        system = build_splitwise_system(paper_cluster(), get_model_spec("llama-13b"))
        assert system.available_cache_bytes() == pytest.approx(
            system.decode_unit.available_kv_bytes()
        )


class TestServing:
    def test_end_to_end_with_migrations(self):
        system = build_splitwise_system(paper_cluster(), get_model_spec("llama-13b"))
        result = Engine(system).run(generate_trace("sharegpt", 5.0, 15, seed=0))
        assert result.summary.num_finished == 15
        assert system.num_migrations == 15
        assert system.total_migrated_bytes > 0

    def test_migration_delay_adds_to_ttft(self):
        """TTFT of a disaggregated system includes the cache migration hop."""
        model = get_model_spec("llama-13b")
        system = build_splitwise_system(paper_cluster(), model)
        trace = generate_trace("sharegpt", 0.2, 5, seed=1)  # light load: no queueing
        result = Engine(system).run(trace)
        # Every TTFT must exceed the pure network transfer time of its cache.
        lan_bw = 12.5e9
        for record in result.metrics.records:
            migration_floor = record.prompt_tokens * model.kv_bytes_per_token() / lan_bw
            assert record.ttft > migration_floor
