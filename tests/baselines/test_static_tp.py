"""Tests for the uniform static pipeline reference."""

import pytest

from repro.baselines.static_tp import build_static_tp_system, plan_static_tp_config
from repro.hardware.cluster import ClusterBuilder, paper_cluster
from repro.models.spec import get_model_spec
from repro.sim.engine import Engine
from repro.workloads.trace import generate_trace


def test_layers_spread_evenly():
    config = plan_static_tp_config(paper_cluster(), get_model_spec("llama-70b"))
    layers = [s.num_layers for s in config.instances[0].stages]
    assert max(layers) - min(layers) <= 1
    assert sum(layers) == 80


def test_every_host_group_gets_a_stage():
    config = plan_static_tp_config(paper_cluster(), get_model_spec("llama-13b"))
    assert len(config.instances[0].stages) == 4


def test_memory_error_for_oversized_model():
    tiny = ClusterBuilder().add_host("p100", 2).build()
    with pytest.raises(MemoryError):
        build_static_tp_system(tiny, get_model_spec("llama-70b"))


def test_end_to_end_run():
    system = build_static_tp_system(paper_cluster(), get_model_spec("llama-13b"))
    result = Engine(system).run(generate_trace("humaneval", 10.0, 12, seed=0))
    assert result.summary.num_finished == 12


def test_uniform_split_slower_than_hexgen_skewed_split():
    """The heterogeneity-aware skew should beat the uniform split on this cluster."""
    from repro.baselines.hexgen import build_hexgen_system

    model = get_model_spec("llama-13b")
    trace = generate_trace("sharegpt", 8.0, 30, seed=2)
    uniform = Engine(build_static_tp_system(paper_cluster(), model)).run(trace)
    skewed = Engine(build_hexgen_system(paper_cluster(), model)).run(trace)
    assert skewed.summary.mean_normalized_latency < uniform.summary.mean_normalized_latency
