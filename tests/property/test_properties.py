"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvcache.block_manager import BlockAllocationError, PagedBlockManager
from repro.kvcache.head_block_manager import HeadwiseBlockManager
from repro.kvcache.migration import plan_head_migration
from repro.models.spec import get_model_spec
from repro.parallel.partitioner import max_stage_cost, partition_layers_balanced, partition_layers_proportional
from repro.solvers.head_dispatch import HeadDispatchProblem, solve_greedy, solve_lp
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.datasets import get_dataset_spec
from repro.utils.rng import make_rng


# --------------------------------------------------------------------------- paged blocks

@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "append", "free"]), st.integers(0, 5), st.integers(1, 400)),
        min_size=1,
        max_size=60,
    )
)
def test_paged_block_manager_never_overcommits(ops):
    """Used blocks never exceed capacity and always equal the sum of per-seq blocks."""
    manager = PagedBlockManager(capacity_bytes=64 * 16 * 1024, kv_bytes_per_token=1024, block_size=16)
    for op, seq, tokens in ops:
        try:
            if op == "alloc":
                manager.allocate(seq, tokens)
            elif op == "append":
                manager.append(seq, tokens)
            else:
                manager.free(seq)
        except (BlockAllocationError, KeyError, ValueError):
            pass
        assert 0 <= manager.used_blocks <= manager.total_blocks
        expected = sum(manager.blocks_needed(manager.tokens_of(s)) for s in manager.sequences())
        assert manager.used_blocks == expected


@settings(max_examples=40, deadline=None)
@given(
    heads=st.lists(st.integers(1, 8).map(lambda g: g * 8), min_size=1, max_size=10),
    tokens=st.lists(st.integers(1, 3000), min_size=1, max_size=10),
)
def test_headwise_manager_token_heads_accounting(heads, tokens):
    """g_i always equals the sum over resident sequences of heads x tokens."""
    model = get_model_spec("llama-70b")
    manager = HeadwiseBlockManager(capacity_bytes=80 * 10**9, model=model)
    n = min(len(heads), len(tokens))
    placed = {}
    for seq in range(n):
        try:
            manager.allocate(seq, heads[seq], tokens[seq])
            placed[seq] = (heads[seq], tokens[seq])
        except BlockAllocationError:
            pass
    expected = sum(h * t for h, t in placed.values())
    assert manager.total_token_heads() == expected
    assert manager.total_query_heads() == sum(h for h, _ in placed.values())


# --------------------------------------------------------------------------- migration

@settings(max_examples=60, deadline=None)
@given(
    groups_per_device=st.lists(st.integers(0, 8), min_size=2, max_size=5),
    context=st.integers(1, 5000),
    data=st.data(),
)
def test_migration_plan_conserves_heads(groups_per_device, context, data):
    """Any permutation of a valid allocation is reachable with conserved head counts."""
    model = get_model_spec("llama-70b")
    total_groups = sum(groups_per_device)
    if total_groups == 0 or total_groups * 8 > model.num_heads * 4:
        return
    old = {i: g * 8 for i, g in enumerate(groups_per_device)}
    # Build a new allocation with the same total by redistributing groups randomly.
    perm = data.draw(
        st.lists(st.integers(0, len(groups_per_device) - 1), min_size=total_groups, max_size=total_groups)
    )
    new = {i: 0 for i in old}
    for dest in perm:
        new[dest] += 8
    plan = plan_head_migration(model, 0, context, old, new)
    # Heads leaving == heads arriving, and no step moves more than what existed.
    moved_out = {i: 0 for i in old}
    moved_in = {i: 0 for i in old}
    for step in plan.steps:
        moved_out[step.src_device] += step.num_query_heads
        moved_in[step.dst_device] += step.num_query_heads
    for dev in old:
        assert old[dev] - moved_out[dev] + moved_in[dev] == new[dev]
        assert moved_out[dev] <= old[dev]


# --------------------------------------------------------------------------- partitioner

@settings(max_examples=60, deadline=None)
@given(
    num_layers=st.integers(2, 120),
    speeds=st.lists(st.floats(0.1, 100.0), min_size=1, max_size=6),
)
def test_partitioner_covers_all_layers(num_layers, speeds):
    if len(speeds) > num_layers:
        speeds = speeds[:num_layers]
    counts = partition_layers_balanced(num_layers, speeds)
    assert sum(counts) == num_layers
    assert all(c >= 1 for c in counts)
    # Without the non-empty-stage constraint, the balanced split never does
    # worse than the plain proportional split.
    unconstrained = partition_layers_balanced(num_layers, speeds, min_layers_per_stage=0)
    assert sum(unconstrained) == num_layers
    prop = partition_layers_proportional(num_layers, speeds)
    assert max_stage_cost(unconstrained, speeds) <= max_stage_cost(prop, speeds) + 1e-9


# --------------------------------------------------------------------------- dispatch LP

@settings(max_examples=30, deadline=None)
@given(
    n_requests=st.integers(1, 6),
    n_workers=st.integers(1, 3),
    seed=st.integers(0, 1000),
)
def test_dispatch_solutions_always_feasible_when_capacity_exists(n_requests, n_workers, seed):
    rng = make_rng(seed)
    n_dev = n_workers + 1
    problem = HeadDispatchProblem(
        head_cost=rng.uniform(1e-6, 5e-5, n_dev),
        cache_cost=rng.uniform(1e-10, 5e-9, n_dev),
        base_cost=rng.uniform(0, 1e-3, n_dev),
        capacity=np.full(n_dev, 1e7),
        contexts=rng.integers(50, 4000, n_requests).astype(float),
        total_heads=64,
        group_size=8,
    )
    for solver in (solve_lp, solve_greedy):
        solution = solver(problem)
        assert solution.feasible
        assert problem.is_feasible(solution.allocation)
        assert np.all(solution.allocation % 8 == 0)
        # The reported objective matches the allocation.
        assert solution.objective >= problem.objective(solution.allocation) - 1e-9


# --------------------------------------------------------------------------- workloads

@settings(max_examples=30, deadline=None)
@given(rate=st.floats(0.5, 50.0), n=st.integers(1, 200), seed=st.integers(0, 100))
def test_poisson_arrivals_sorted_positive(rate, n, seed):
    times = poisson_arrivals(rate, n, seed=seed)
    assert len(times) == n
    assert all(t > 0 for t in times)
    assert times == sorted(times)


@settings(max_examples=30, deadline=None)
@given(
    dataset=st.sampled_from(["sharegpt", "humaneval", "longbench"]),
    n=st.integers(0, 200),
    seed=st.integers(0, 50),
)
def test_dataset_samples_within_bounds(dataset, n, seed):
    spec = get_dataset_spec(dataset)
    samples = spec.sample(make_rng(seed), n)
    assert len(samples) == n
    for s in samples:
        assert spec.prompt_min <= s.prompt_tokens <= spec.prompt_max
        assert spec.output_min <= s.output_tokens <= spec.output_max
