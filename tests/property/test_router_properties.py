"""Seed-sweep property suite for the replica routers.

These tests drive the routers against lightweight fake replicas (anything
with ``.units`` exposing ``kv_utilization()`` plus ``available_cache_bytes()``
satisfies the router contract), so hundreds of seed/shape combinations run in
milliseconds without building real serving systems.

Invariants covered:

* every router always returns an index inside the candidate list,
* round-robin is exactly fair over ``k * N`` arrivals,
* power-of-two (and its weighted variant) is bit-identical across runs for a
  fixed seed,
* least-kv never picks a strictly-more-loaded replica,
* the weighted round-robin split tracks capacity weights to within one
  request per replica.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster_system import (
    ROUTER_FACTORIES,
    LeastKVLoadRouter,
    PowerOfTwoChoicesRouter,
    RoundRobinRouter,
    WeightedPowerOfTwoRouter,
    WeightedRoundRobinRouter,
    make_router,
)


class FakeUnit:
    def __init__(self, utilization: float) -> None:
        self.utilization = utilization
        self.num_waiting = 0
        self.num_running = 0

    def kv_utilization(self):
        return {"dev0": self.utilization}


class FakeReplica:
    """Duck-typed stand-in for a ServingSystem as the routers see one."""

    def __init__(self, utilization: float = 0.0, capacity: float = 1e9) -> None:
        self._unit = FakeUnit(utilization)
        self._capacity = capacity

    @property
    def units(self):
        return [self._unit]

    def set_utilization(self, value: float) -> None:
        self._unit.utilization = value

    def available_cache_bytes(self) -> float:
        return self._capacity


def make_replicas(utils, caps=None):
    caps = caps or [1e9] * len(utils)
    return [FakeReplica(u, c) for u, c in zip(utils, caps)]


# ---------------------------------------------------------------- in-range selection


@settings(max_examples=60, deadline=None)
@given(
    router_name=st.sampled_from(sorted(ROUTER_FACTORIES)),
    utils=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=8),
    caps=st.data(),
    seed=st.integers(0, 100),
    arrivals=st.integers(1, 40),
)
def test_selected_index_always_in_range(router_name, utils, caps, seed, arrivals):
    capacities = caps.draw(
        st.lists(st.floats(1e6, 1e12), min_size=len(utils), max_size=len(utils))
    )
    replicas = make_replicas(utils, capacities)
    router = make_router(router_name, seed=seed)
    for i in range(arrivals):
        idx = router.select(None, replicas, now=float(i))
        assert 0 <= idx < len(replicas)


# ---------------------------------------------------------------- round-robin fairness


@settings(max_examples=40, deadline=None)
@given(n=st.integers(1, 8), k=st.integers(1, 10))
def test_round_robin_exactly_fair_over_kn_arrivals(n, k):
    replicas = make_replicas([0.0] * n)
    router = RoundRobinRouter()
    counts = Counter(router.select(None, replicas, now=float(t)) for t in range(k * n))
    assert all(counts[i] == k for i in range(n))


# ---------------------------------------------------------------- determinism


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 1000),
    n=st.integers(2, 8),
    arrivals=st.integers(1, 64),
    weighted=st.booleans(),
)
def test_power_of_two_bit_identical_for_fixed_seed(seed, n, arrivals, weighted):
    cls = WeightedPowerOfTwoRouter if weighted else PowerOfTwoChoicesRouter
    caps = [float(1 + i) * 1e8 for i in range(n)]
    picks = []
    for _ in range(2):
        replicas = make_replicas([0.1 * (i % 3) for i in range(n)], caps)
        router = cls(seed=seed)
        picks.append([router.select(None, replicas, now=float(t)) for t in range(arrivals)])
    assert picks[0] == picks[1]


# ---------------------------------------------------------------- least-kv dominance


@settings(max_examples=60, deadline=None)
@given(
    utils=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=8),
    now=st.floats(0.0, 1e6),
)
def test_least_kv_never_picks_strictly_more_loaded(utils, now):
    replicas = make_replicas(utils)
    idx = LeastKVLoadRouter().select(None, replicas, now=now)
    assert utils[idx] == pytest.approx(min(utils))


@settings(max_examples=40, deadline=None)
@given(utils=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=8), seed=st.integers(0, 50))
def test_power_of_two_pick_not_worse_than_other_candidate(utils, seed):
    """The chosen replica is never strictly more loaded than the unsampled
    alternative of its pair -- checked indirectly: the pick's load is never
    strictly greater than both candidates' loads, i.e. never the unique max
    of a sampled pair."""
    replicas = make_replicas(utils)
    router = PowerOfTwoChoicesRouter(seed=seed)
    for t in range(32):
        idx = router.select(None, replicas, now=float(t))
        strictly_less_loaded = sum(1 for u in utils if u < utils[idx])
        # With 2 candidates, at most one can be strictly less loaded than the
        # pick (the pick beats or ties the other candidate).
        assert strictly_less_loaded <= len(utils) - 1
        if len(utils) == 2:
            assert utils[idx] == pytest.approx(min(utils))


# ---------------------------------------------------------------- weighted fairness


@settings(max_examples=40, deadline=None)
@given(
    weights=st.lists(st.integers(1, 8), min_size=1, max_size=6),
    rounds=st.integers(1, 6),
)
def test_weighted_round_robin_split_tracks_weights(weights, rounds):
    """Over rounds * sum(weights) arrivals, each replica receives exactly
    rounds * weight requests (smooth weighted round-robin property)."""
    caps = [w * 1e8 for w in weights]
    replicas = make_replicas([0.0] * len(weights), caps)
    router = WeightedRoundRobinRouter()
    total = rounds * sum(weights)
    counts = Counter(router.select(None, replicas, now=float(t)) for t in range(total))
    for i, w in enumerate(weights):
        assert abs(counts[i] - rounds * w) <= 1


# ---------------------------------------------------------------- memoization


def test_kv_load_memoized_within_timestamp():
    """Same-timestamp bursts hit the cache; advancing time invalidates it."""
    calls = {"n": 0}

    class CountingReplica(FakeReplica):
        @property
        def units(self):
            calls["n"] += 1
            return [self._unit]

    replicas = [CountingReplica(0.5), CountingReplica(0.2)]
    router = LeastKVLoadRouter()
    router.select(None, replicas, now=1.0)
    after_first = calls["n"]
    assert after_first == 2  # one scan per replica
    for _ in range(10):
        router.select(None, replicas, now=1.0)
    assert calls["n"] == after_first  # burst at t=1.0 never rescans
    replicas[0].set_utilization(0.0)
    assert router.select(None, replicas, now=2.0) == 0  # new time sees new load
    assert calls["n"] == after_first + 2
