"""Tests for the min-max head-dispatching solvers."""

import numpy as np
import pytest

from repro.solvers.head_dispatch import (
    HeadDispatchProblem,
    round_to_groups,
    solve_greedy,
    solve_lp,
)


def make_problem(
    n_devices=3,
    n_requests=4,
    total_heads=64,
    group_size=8,
    capacity_scale=1e6,
    head_cost=None,
    contexts=None,
):
    head_cost = np.array(head_cost if head_cost is not None else [1e-5, 3e-5, 3e-5])[:n_devices]
    return HeadDispatchProblem(
        head_cost=head_cost,
        cache_cost=np.full(n_devices, 1e-9),
        base_cost=np.zeros(n_devices),
        capacity=np.full(n_devices, capacity_scale),
        contexts=np.array(contexts if contexts is not None else [500, 1000, 1500, 2000])[:n_requests],
        total_heads=total_heads,
        group_size=group_size,
    )


class TestProblem:
    def test_objective_computes_max_load(self):
        p = make_problem(n_devices=2, n_requests=1, head_cost=[1.0, 2.0], contexts=[100])
        x = np.array([[32.0], [32.0]])
        # device0: 32, device1: 64 (+ tiny cache term)
        assert p.objective(x) == pytest.approx(64.0, rel=0.01)

    def test_is_feasible_checks_integrity(self):
        p = make_problem()
        x = np.zeros((3, 4))
        assert not p.is_feasible(x)
        x[0, :] = 64
        assert p.is_feasible(x)

    def test_is_feasible_checks_capacity(self):
        p = make_problem(capacity_scale=100.0)
        x = np.zeros((3, 4))
        x[0, :] = 64
        assert not p.is_feasible(x)

    def test_total_capacity_check(self):
        assert make_problem().total_capacity_sufficient()
        assert not make_problem(capacity_scale=10.0).total_capacity_sufficient()

    def test_validation(self):
        with pytest.raises(ValueError):
            make_problem(total_heads=65, group_size=8)
        with pytest.raises(ValueError):
            HeadDispatchProblem(
                head_cost=np.ones(2),
                cache_cost=np.ones(3),
                base_cost=np.zeros(2),
                capacity=np.ones(2),
                contexts=np.ones(1),
                total_heads=8,
            )


class TestLPSolver:
    def test_solution_feasible_and_integral(self):
        p = make_problem()
        sol = solve_lp(p)
        assert sol.feasible
        assert p.is_feasible(sol.allocation)
        assert np.all(sol.allocation % p.group_size == 0)

    def test_prefers_cheap_device_under_light_load(self):
        p = make_problem(n_requests=1, contexts=[100], head_cost=[1e-6, 1e-3, 1e-3])
        sol = solve_lp(p)
        assert sol.allocation[0, 0] == p.total_heads

    def test_balances_under_heavy_load(self):
        # Equal devices, many long requests: no single device should take everything.
        p = HeadDispatchProblem(
            head_cost=np.full(3, 1e-5),
            cache_cost=np.full(3, 1e-9),
            base_cost=np.zeros(3),
            capacity=np.full(3, 1e7),
            contexts=np.full(12, 2000.0),
            total_heads=64,
            group_size=8,
        )
        sol = solve_lp(p)
        per_device = sol.allocation.sum(axis=1)
        assert per_device.max() < 64 * 12  # not all on one device
        assert sol.objective <= solve_greedy(p).objective * 1.05

    def test_infeasible_when_no_capacity(self):
        p = make_problem(capacity_scale=10.0)
        sol = solve_lp(p)
        assert not sol.feasible

    def test_respects_per_device_capacity(self):
        # Device 0 is cheap but tiny; overflow must land elsewhere.
        p = HeadDispatchProblem(
            head_cost=np.array([1e-6, 1e-4]),
            cache_cost=np.array([1e-9, 1e-9]),
            base_cost=np.zeros(2),
            capacity=np.array([64 * 500.0, 1e9]),
            contexts=np.array([500.0, 500.0]),
            total_heads=64,
            group_size=8,
        )
        sol = solve_lp(p)
        assert sol.feasible
        used0 = float((sol.allocation[0] * p.contexts).sum())
        assert used0 <= p.capacity[0] + 1e-6

    def test_lp_objective_reported(self):
        sol = solve_lp(make_problem())
        assert sol.lp_objective is not None
        assert sol.objective >= sol.lp_objective - 1e-9


class TestGreedySolver:
    def test_feasible_and_integral(self):
        p = make_problem()
        sol = solve_greedy(p)
        assert sol.feasible
        assert p.is_feasible(sol.allocation)
        assert np.all(sol.allocation % p.group_size == 0)

    def test_infeasible_without_capacity(self):
        assert not solve_greedy(make_problem(capacity_scale=1.0)).feasible

    def test_greedy_close_to_lp(self):
        p = make_problem(n_requests=4)
        lp = solve_lp(p)
        greedy = solve_greedy(p)
        assert greedy.objective <= lp.objective * 2.0 + 1e-9


class TestRounding:
    def test_round_preserves_totals(self):
        p = make_problem()
        frac = np.full((3, 4), p.total_heads / 3.0)
        rounded = round_to_groups(p, frac)
        assert rounded is not None
        assert np.allclose(rounded.sum(axis=0), p.total_heads)

    def test_round_handles_exact_input(self):
        p = make_problem(n_devices=2, n_requests=1, head_cost=[1.0, 1.0], contexts=[10])
        frac = np.array([[32.0], [32.0]])
        rounded = round_to_groups(p, frac)
        assert np.allclose(rounded, frac)
