"""Tests for parallel-configuration objects."""

import pytest

from repro.hardware.cluster import paper_cluster
from repro.models.spec import get_model_spec
from repro.parallel.config import ClusterParallelConfig, InstanceParallelConfig, StageConfig


@pytest.fixture
def cluster():
    return paper_cluster()


@pytest.fixture
def llama13b():
    return get_model_spec("llama-13b")


def make_instance(cluster, model, with_attention=False):
    a100s = cluster.devices_of_type("a100")
    r3090s = cluster.devices_of_type("rtx3090")
    p100s = cluster.devices_of_type("p100")
    stages = [
        StageConfig(devices=a100s, num_layers=28),
        StageConfig(devices=r3090s, num_layers=model.num_layers - 28),
    ]
    workers = p100s if with_attention else []
    return InstanceParallelConfig(stages=stages, attention_workers=workers)


class TestStageConfig:
    def test_even_fractions_by_default(self, cluster):
        stage = StageConfig(devices=cluster.devices_of_type("a100"), num_layers=10)
        assert stage.fractions() == [0.25] * 4
        assert stage.tp_degree == 4

    def test_explicit_fractions_must_sum_to_one(self, cluster):
        devs = cluster.devices_of_type("a100")[:2]
        with pytest.raises(ValueError, match="sum to 1"):
            StageConfig(devices=devs, num_layers=4, shard_fractions=[0.7, 0.7])

    def test_fraction_length_mismatch(self, cluster):
        with pytest.raises(ValueError):
            StageConfig(devices=cluster.devices_of_type("a100"), num_layers=4, shard_fractions=[1.0])

    def test_asymmetric_weight_split(self, cluster, llama13b):
        devs = cluster.devices_of_type("a100")[:2]
        stage = StageConfig(devices=devs, num_layers=10, shard_fractions=[0.75, 0.25])
        weights = stage.weight_bytes_per_device(llama13b)
        assert weights[devs[0].device_id] == pytest.approx(3 * weights[devs[1].device_id], rel=1e-6)

    def test_requires_devices_and_layers(self, cluster):
        with pytest.raises(ValueError):
            StageConfig(devices=[], num_layers=1)
        with pytest.raises(ValueError):
            StageConfig(devices=cluster.devices_of_type("a100"), num_layers=0)


class TestInstanceParallelConfig:
    def test_layer_count_validation(self, cluster, llama13b):
        inst = make_instance(cluster, llama13b)
        inst.validate_layer_count(llama13b)  # should not raise
        bad = InstanceParallelConfig(
            stages=[StageConfig(devices=cluster.devices_of_type("a100"), num_layers=7)]
        )
        with pytest.raises(ValueError, match="layers"):
            bad.validate_layer_count(llama13b)

    def test_primary_and_attention_devices(self, cluster, llama13b):
        inst = make_instance(cluster, llama13b, with_attention=True)
        assert len(inst.primary_devices) == 8
        assert len(inst.attention_workers) == 4
        assert len(inst.all_devices) == 12

    def test_device_cannot_be_both_roles(self, cluster, llama13b):
        a100s = cluster.devices_of_type("a100")
        with pytest.raises(ValueError, match="both a primary and an attention worker"):
            InstanceParallelConfig(
                stages=[StageConfig(devices=a100s, num_layers=llama13b.num_layers)],
                attention_workers=[a100s[0]],
            )

    def test_weight_bytes_cover_whole_model(self, cluster, llama13b):
        inst = make_instance(cluster, llama13b)
        weights = inst.weight_bytes_per_device(llama13b)
        total = sum(weights.values())
        assert total == pytest.approx(llama13b.param_bytes, rel=0.02)

    def test_attention_workers_hold_no_weights(self, cluster, llama13b):
        inst = make_instance(cluster, llama13b, with_attention=True)
        weights = inst.weight_bytes_per_device(llama13b)
        for worker in inst.attention_workers:
            assert weights[worker.device_id] == 0

    def test_kv_capacity_positive_after_weights(self, cluster, llama13b):
        inst = make_instance(cluster, llama13b)
        kv = inst.kv_capacity_per_device(llama13b)
        assert all(v > 0 for v in kv.values())

    def test_fits_in_memory_false_for_huge_model_on_small_devices(self, cluster):
        llama70b = get_model_spec("llama-70b")
        p100s = cluster.devices_of_type("p100")
        inst = InstanceParallelConfig(
            stages=[StageConfig(devices=p100s, num_layers=llama70b.num_layers)]
        )
        assert not inst.fits_in_memory(llama70b)

    def test_apply_weight_assignment_mutates_devices(self, cluster, llama13b):
        inst = make_instance(cluster, llama13b)
        inst.apply_weight_assignment(llama13b)
        assert all(d.weight_bytes > 0 for d in inst.primary_devices)


class TestClusterParallelConfig:
    def test_duplicate_device_across_instances_rejected(self, cluster, llama13b):
        inst = make_instance(cluster, llama13b)
        with pytest.raises(ValueError, match="multiple instances"):
            ClusterParallelConfig(instances=[inst, inst])

    def test_total_kv_capacity(self, cluster, llama13b):
        inst = make_instance(cluster, llama13b, with_attention=True)
        config = ClusterParallelConfig(instances=[inst])
        assert config.total_kv_capacity_bytes(llama13b) == inst.total_kv_capacity_bytes(llama13b)
        assert config.num_instances == 1
