"""Tests for device grouping into data-parallel instances."""

import pytest

from repro.hardware.cluster import ClusterBuilder, paper_cluster
from repro.parallel.placement import feasible_instance_counts, group_devices_evenly


def test_feasible_counts_paper_cluster():
    # 4 of each type: 1, 2, and 4 instances divide every type evenly.
    assert feasible_instance_counts(paper_cluster()) == [1, 2, 4]


def test_feasible_counts_respects_max():
    assert feasible_instance_counts(paper_cluster(), max_instances=2) == [1, 2]


def test_feasible_counts_uneven_mix():
    cluster = ClusterBuilder().add_host("a100", 3).add_host("p100", 2).build()
    assert feasible_instance_counts(cluster) == [1]


def test_group_devices_even_mix():
    groups = group_devices_evenly(paper_cluster(), 2)
    assert len(groups) == 2
    for group in groups:
        names = sorted(d.spec.name for d in group)
        assert names == ["a100", "a100", "p100", "p100", "rtx3090", "rtx3090"]


def test_group_devices_single_instance_gets_everything():
    cluster = paper_cluster()
    groups = group_devices_evenly(cluster, 1)
    assert len(groups[0]) == cluster.num_devices


def test_group_devices_disjoint():
    groups = group_devices_evenly(paper_cluster(), 4)
    seen = set()
    for group in groups:
        for dev in group:
            assert dev.device_id not in seen
            seen.add(dev.device_id)
    assert len(seen) == 12


def test_group_devices_infeasible_count_rejected():
    with pytest.raises(ValueError):
        group_devices_evenly(paper_cluster(), 3)


def test_group_devices_invalid_count():
    with pytest.raises(ValueError):
        group_devices_evenly(paper_cluster(), 0)
