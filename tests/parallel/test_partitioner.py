"""Tests for layer-to-stage partitioning."""

import pytest

from repro.parallel.partitioner import (
    max_stage_cost,
    partition_layers_balanced,
    partition_layers_proportional,
)


class TestProportional:
    def test_sums_to_total(self):
        for speeds in ([1, 1], [5, 3, 1], [10, 1, 1, 1]):
            counts = partition_layers_proportional(80, speeds)
            assert sum(counts) == 80

    def test_equal_speeds_equal_split(self):
        assert partition_layers_proportional(40, [1.0, 1.0]) == [20, 20]

    def test_proportionality(self):
        counts = partition_layers_proportional(80, [3.0, 1.0])
        assert counts == [60, 20]

    def test_zero_speed_gets_zero_layers(self):
        counts = partition_layers_proportional(10, [1.0, 0.0])
        assert counts == [10, 0]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            partition_layers_proportional(0, [1.0])
        with pytest.raises(ValueError):
            partition_layers_proportional(10, [])
        with pytest.raises(ValueError):
            partition_layers_proportional(10, [0.0, 0.0])
        with pytest.raises(ValueError):
            partition_layers_proportional(10, [-1.0, 2.0])


class TestMaxStageCost:
    def test_balanced_cost(self):
        assert max_stage_cost([10, 10], [1.0, 1.0]) == pytest.approx(10.0)

    def test_bottleneck_dominates(self):
        assert max_stage_cost([10, 1], [1.0, 0.01]) == pytest.approx(100.0)

    def test_zero_layer_stage_free(self):
        assert max_stage_cost([10, 0], [1.0, 0.0]) == pytest.approx(10.0)

    def test_infeasible_zero_speed_with_layers(self):
        assert max_stage_cost([1, 1], [1.0, 0.0]) == float("inf")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            max_stage_cost([1, 2, 3], [1.0, 1.0])


class TestBalanced:
    def test_sums_to_total_and_respects_minimum(self):
        counts = partition_layers_balanced(80, [10.0, 4.0, 0.5])
        assert sum(counts) == 80
        assert all(c >= 1 for c in counts)

    def test_no_worse_than_proportional(self):
        speeds = [7.0, 3.0, 1.0]
        prop = partition_layers_proportional(40, speeds)
        bal = partition_layers_balanced(40, speeds)
        assert max_stage_cost(bal, speeds) <= max_stage_cost(prop, speeds) + 1e-9

    def test_two_stage_known_optimum(self):
        # Speeds 3:1 over 8 layers -> 6/2 is optimal (cost 2.0).
        counts = partition_layers_balanced(8, [3.0, 1.0])
        assert max_stage_cost(counts, [3.0, 1.0]) == pytest.approx(2.0)

    def test_min_layers_zero_allows_empty_stage(self):
        counts = partition_layers_balanced(4, [1.0, 1000.0], min_layers_per_stage=0)
        assert sum(counts) == 4
        assert counts[1] >= 3  # nearly everything goes to the fast stage

    def test_infeasible_minimum_rejected(self):
        with pytest.raises(ValueError):
            partition_layers_balanced(2, [1.0, 1.0, 1.0], min_layers_per_stage=1)

    def test_single_stage(self):
        assert partition_layers_balanced(12, [5.0]) == [12]
